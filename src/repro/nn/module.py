"""Module and parameter abstractions for the :mod:`repro.nn` substrate.

A :class:`Module` owns named :class:`Parameter` tensors and child modules and
exposes the state-dict protocol that the merging code in :mod:`repro.core`
operates on: ``state_dict()`` returns a flat ``{name: numpy array}`` mapping,
``load_state_dict()`` restores it.  That mapping is the common currency between
training, checkpointing, and every merge method in this repository.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable model weight."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic via ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in registration order."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters as a list."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs, including self as ``""``."""
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module tree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # train/eval and gradient helpers
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Put the module (recursively) in training mode."""
        object.__setattr__(self, "training", True)
        for m in self._modules.values():
            m.train()
        return self

    def eval(self) -> "Module":
        """Put the module (recursively) in evaluation mode."""
        object.__setattr__(self, "training", False)
        for m in self._modules.values():
            m.eval()
        return self

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # state dict protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a flat name → numpy array copy of all weights."""
        return OrderedDict((name, p.data.copy()) for name, p in self.named_parameters())

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load weights from a flat name → array mapping.

        Parameters
        ----------
        state:
            Mapping as produced by :meth:`state_dict`.
        strict:
            If True, missing or unexpected keys raise ``KeyError`` and shape
            mismatches raise ``ValueError``.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(
                    f"state dict mismatch: missing={missing}, unexpected={unexpected}"
                )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: model {param.data.shape}, "
                    f"state {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of child modules registered under their index."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> None:
        name = str(len(self._items))
        self._items.append(module)
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]
