"""Decoder-only transformer language model.

This is the substrate standing in for the LLaMA / Qwen backbones merged by the
paper: pre-norm RMSNorm blocks, bias-free attention projections, SwiGLU MLPs,
learned positional embeddings, and an untied LM head.  Its weights are exposed
through the state-dict protocol consumed by :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Optional

import numpy as np

from . import kernels
from .attention import MultiHeadSelfAttention
from .layers import Dropout, Embedding, FeedForward, Linear, RMSNorm
from .module import Module, ModuleList
from .tensor import Tensor


@dataclass(frozen=True)
class TransformerConfig:
    """Hyperparameters of a :class:`TransformerLM`.

    The named presets in :func:`preset_config` mirror the paper's backbone
    families at toy scale (see DESIGN.md §1).
    """

    vocab_size: int
    dim: int = 64
    n_layers: int = 2
    n_heads: int = 4
    max_seq_len: int = 128
    ffn_mult: int = 4
    dropout: float = 0.0
    seed: int = 0
    # "rope" (LLaMA-style rotary, the default) or "learned" absolute.
    pos_encoding: str = "rope"
    # Route attention / RMSNorm / loss through the single-node fused kernels
    # (repro.nn.kernels); False keeps the composed-op reference graph.
    use_fused: bool = True

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "TransformerConfig":
        return TransformerConfig(**d)


def preset_config(name: str, vocab_size: int, seed: int = 0) -> TransformerConfig:
    """Return a named backbone preset.

    ``nano`` / ``micro`` / ``grande`` play the roles of Qwen1.5-14B,
    LLaMA3-8B, and LLaMA2-70B respectively — same architecture family,
    increasing capacity.
    """
    presets = {
        "nano": dict(dim=48, n_layers=2, n_heads=4, max_seq_len=176),
        "micro": dict(dim=64, n_layers=2, n_heads=4, max_seq_len=176),
        "grande": dict(dim=96, n_layers=3, n_heads=6, max_seq_len=208),
    }
    if name not in presets:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(presets)}")
    return TransformerConfig(vocab_size=vocab_size, seed=seed, **presets[name])


class TransformerBlock(Module):
    """Pre-norm transformer block: ``x + attn(norm(x))`` then ``x + mlp(norm(x))``.

    When a sublayer's modules are in their default fused configuration —
    plain bias-free projections, fused RMSNorm, no dropout — the whole
    sublayer (norm, projections, core, residual) runs as one autograd node
    via :func:`repro.nn.kernels.fused_attn_block` /
    :func:`repro.nn.kernels.fused_mlp_block`.  Any deviation (LoRA-wrapped
    projections, ``use_fused=False``, ``dropout > 0``) falls back to the
    composed module chain, which remains the differential reference.
    Eligibility is re-checked every forward, so post-construction surgery
    such as :func:`repro.nn.lora.apply_lora` is picked up automatically.
    """

    def __init__(self, config: TransformerConfig, seed: int) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        seeds = rng.integers(0, 2 ** 31 - 1, size=2)
        self.attn_norm = RMSNorm(config.dim, use_fused=config.use_fused)
        self.attn = MultiHeadSelfAttention(config.dim, config.n_heads, seed=int(seeds[0]),
                                           rope=config.pos_encoding == "rope",
                                           max_seq_len=config.max_seq_len,
                                           use_fused=config.use_fused)
        self.mlp_norm = RMSNorm(config.dim, use_fused=config.use_fused)
        self.mlp = FeedForward(config.dim, config.dim * config.ffn_mult, seed=int(seeds[1]),
                               use_fused=config.use_fused)
        self.dropout = Dropout(config.dropout, seed=int(seeds[1]) ^ 0x5EED)

    def _attn_block_fusable(self) -> bool:
        attn = self.attn
        return (self.dropout.p == 0.0
                and type(attn) is MultiHeadSelfAttention and attn.use_fused
                and attn._plain_qkv()
                and type(attn.o_proj) is Linear and attn.o_proj.bias is None
                and type(self.attn_norm) is RMSNorm and self.attn_norm.use_fused)

    def _mlp_block_fusable(self) -> bool:
        mlp = self.mlp
        return (self.dropout.p == 0.0
                and type(mlp) is FeedForward and mlp.use_fused
                and all(type(p) is Linear and p.bias is None
                        for p in (mlp.gate_proj, mlp.up_proj, mlp.down_proj))
                and type(self.mlp_norm) is RMSNorm and self.mlp_norm.use_fused)

    def forward(self, x: Tensor) -> Tensor:
        if self._attn_block_fusable():
            attn = self.attn
            cos = sin = None
            if attn.rope:
                cos, sin = attn._rope_table.get(x.shape[1], x.data.dtype)
            x = kernels.fused_attn_block(
                x, self.attn_norm.weight, attn.q_proj.weight,
                attn.k_proj.weight, attn.v_proj.weight, attn.o_proj.weight,
                attn.n_heads, rope_cos=cos, rope_sin=sin,
                eps=self.attn_norm.eps)
        else:
            x = x + self.dropout(self.attn(self.attn_norm(x)))
        if self._mlp_block_fusable():
            mlp = self.mlp
            x = kernels.fused_mlp_block(
                x, self.mlp_norm.weight, mlp.gate_proj.weight,
                mlp.up_proj.weight, mlp.down_proj.weight,
                eps=self.mlp_norm.eps)
        else:
            x = x + self.dropout(self.mlp(self.mlp_norm(x)))
        return x


class TransformerLM(Module):
    """Decoder-only causal language model over integer token ids."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        self.config = config
        if config.pos_encoding not in ("rope", "learned"):
            raise ValueError(f"unknown pos_encoding {config.pos_encoding!r}")
        rng = np.random.default_rng(config.seed)
        seeds = rng.integers(0, 2 ** 31 - 1, size=config.n_layers + 3)
        self.tok_emb = Embedding(config.vocab_size, config.dim, seed=int(seeds[0]))
        if config.pos_encoding == "learned":
            self.pos_emb = Embedding(config.max_seq_len, config.dim, seed=int(seeds[1]))
        else:
            self.pos_emb = None
        self.blocks = ModuleList(
            TransformerBlock(config, seed=int(seeds[2 + i])) for i in range(config.n_layers)
        )
        self.final_norm = RMSNorm(config.dim, use_fused=config.use_fused)
        self.lm_head = Linear(config.dim, config.vocab_size, bias=False,
                              seed=int(seeds[-1]), use_fused=config.use_fused)

    def _backbone(self, ids: np.ndarray) -> Tensor:
        """Embeddings + transformer blocks; everything before the final norm."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[None, :]
        batch, seq = ids.shape
        if seq > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq} exceeds max_seq_len={self.config.max_seq_len}"
            )
        x = self.tok_emb(ids)
        if self.pos_emb is not None:
            positions = np.broadcast_to(np.arange(seq), (batch, seq))
            x = x + self.pos_emb(positions)
        for block in self.blocks:
            x = block(x)
        return x

    def forward(self, ids: np.ndarray) -> Tensor:
        """Map token ids ``(batch, seq)`` to next-token logits ``(batch, seq, vocab)``."""
        x = self.final_norm(self._backbone(ids))
        return self.lm_head(x)

    def loss(self, ids: np.ndarray, targets: np.ndarray,
             ignore_index: Optional[int] = None) -> Tensor:
        """Mean next-token cross-entropy over ``(ids, targets)`` as a scalar.

        With the default fused configuration the final norm, LM head and
        cross-entropy run as one autograd node
        (:func:`repro.nn.kernels.fused_lm_loss`), so the ``(B, T, V)`` logits
        and their gradient never escape into the graph.  Otherwise this is
        exactly ``cross_entropy(self(ids), targets)`` on the composed (or
        per-op fused) reference path.
        """
        if (type(self.final_norm) is RMSNorm and self.final_norm.use_fused
                and type(self.lm_head) is Linear and self.lm_head.bias is None
                and self.lm_head.use_fused):
            return kernels.fused_lm_loss(
                self._backbone(ids), self.final_norm.weight,
                self.lm_head.weight, targets, ignore_index=ignore_index,
                eps=self.final_norm.eps)
        from . import functional as F
        logits = self.forward(ids)
        if self.config.use_fused:
            return kernels.fused_cross_entropy(logits, targets,
                                               ignore_index=ignore_index)
        return F.cross_entropy(logits, targets, ignore_index=ignore_index)

    def clone(self) -> "TransformerLM":
        """Return a structurally identical model with copied weights."""
        other = TransformerLM(self.config)
        other.load_state_dict(self.state_dict())
        return other
