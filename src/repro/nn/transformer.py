"""Decoder-only transformer language model.

This is the substrate standing in for the LLaMA / Qwen backbones merged by the
paper: pre-norm RMSNorm blocks, bias-free attention projections, SwiGLU MLPs,
learned positional embeddings, and an untied LM head.  Its weights are exposed
through the state-dict protocol consumed by :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Optional

import numpy as np

from .attention import MultiHeadSelfAttention
from .layers import Dropout, Embedding, FeedForward, Linear, RMSNorm
from .module import Module, ModuleList
from .tensor import Tensor


@dataclass(frozen=True)
class TransformerConfig:
    """Hyperparameters of a :class:`TransformerLM`.

    The named presets in :func:`preset_config` mirror the paper's backbone
    families at toy scale (see DESIGN.md §1).
    """

    vocab_size: int
    dim: int = 64
    n_layers: int = 2
    n_heads: int = 4
    max_seq_len: int = 128
    ffn_mult: int = 4
    dropout: float = 0.0
    seed: int = 0
    # "rope" (LLaMA-style rotary, the default) or "learned" absolute.
    pos_encoding: str = "rope"

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "TransformerConfig":
        return TransformerConfig(**d)


def preset_config(name: str, vocab_size: int, seed: int = 0) -> TransformerConfig:
    """Return a named backbone preset.

    ``nano`` / ``micro`` / ``grande`` play the roles of Qwen1.5-14B,
    LLaMA3-8B, and LLaMA2-70B respectively — same architecture family,
    increasing capacity.
    """
    presets = {
        "nano": dict(dim=48, n_layers=2, n_heads=4, max_seq_len=176),
        "micro": dict(dim=64, n_layers=2, n_heads=4, max_seq_len=176),
        "grande": dict(dim=96, n_layers=3, n_heads=6, max_seq_len=208),
    }
    if name not in presets:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(presets)}")
    return TransformerConfig(vocab_size=vocab_size, seed=seed, **presets[name])


class TransformerBlock(Module):
    """Pre-norm transformer block: ``x + attn(norm(x))`` then ``x + mlp(norm(x))``."""

    def __init__(self, config: TransformerConfig, seed: int) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        seeds = rng.integers(0, 2 ** 31 - 1, size=2)
        self.attn_norm = RMSNorm(config.dim)
        self.attn = MultiHeadSelfAttention(config.dim, config.n_heads, seed=int(seeds[0]),
                                           rope=config.pos_encoding == "rope",
                                           max_seq_len=config.max_seq_len)
        self.mlp_norm = RMSNorm(config.dim)
        self.mlp = FeedForward(config.dim, config.dim * config.ffn_mult, seed=int(seeds[1]))
        self.dropout = Dropout(config.dropout, seed=int(seeds[1]) ^ 0x5EED)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.dropout(self.attn(self.attn_norm(x)))
        x = x + self.dropout(self.mlp(self.mlp_norm(x)))
        return x


class TransformerLM(Module):
    """Decoder-only causal language model over integer token ids."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        self.config = config
        if config.pos_encoding not in ("rope", "learned"):
            raise ValueError(f"unknown pos_encoding {config.pos_encoding!r}")
        rng = np.random.default_rng(config.seed)
        seeds = rng.integers(0, 2 ** 31 - 1, size=config.n_layers + 3)
        self.tok_emb = Embedding(config.vocab_size, config.dim, seed=int(seeds[0]))
        if config.pos_encoding == "learned":
            self.pos_emb = Embedding(config.max_seq_len, config.dim, seed=int(seeds[1]))
        else:
            self.pos_emb = None
        self.blocks = ModuleList(
            TransformerBlock(config, seed=int(seeds[2 + i])) for i in range(config.n_layers)
        )
        self.final_norm = RMSNorm(config.dim)
        self.lm_head = Linear(config.dim, config.vocab_size, bias=False, seed=int(seeds[-1]))

    def forward(self, ids: np.ndarray) -> Tensor:
        """Map token ids ``(batch, seq)`` to next-token logits ``(batch, seq, vocab)``."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[None, :]
        batch, seq = ids.shape
        if seq > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq} exceeds max_seq_len={self.config.max_seq_len}"
            )
        x = self.tok_emb(ids)
        if self.pos_emb is not None:
            positions = np.broadcast_to(np.arange(seq), (batch, seq))
            x = x + self.pos_emb(positions)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return self.lm_head(x)

    def clone(self) -> "TransformerLM":
        """Return a structurally identical model with copied weights."""
        other = TransformerLM(self.config)
        other.load_state_dict(self.state_dict())
        return other
