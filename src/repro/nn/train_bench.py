"""Training-step benchmark: fused kernels vs the composed autograd graph.

Runs the same deterministic workload — identical initial weights, identical
batches, identical optimiser schedule — through two trainers that differ only
in ``use_fused``, and times the steps.  Because the fused kernels implement
mathematically identical forward/backward formulas, the loss curves must
agree to float32 tolerance; the wall-clock ratio is the headline speedup
asserted by ``benchmarks/bench_train.py`` and reported by
``repro bench-train``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import Observability
from .trainer import TrainConfig, Trainer
from .transformer import TransformerLM, preset_config

#: Loss-curve agreement bound between the fused and composed paths.  Both
#: sides run float32 with the same update rule; only op-ordering noise
#: (in-place softmax, folded scaling) separates them, and over tens of steps
#: it stays well under 1e-4 absolute on O(log vocab) losses.
PARITY_ATOL = 5e-4
PARITY_RTOL = 5e-4


def synthetic_sequences(n: int, seq_len: int, vocab: int,
                        seed: int = 0) -> List[List[int]]:
    """Fixed-length random token sequences avoiding the pad id 0."""
    rng = np.random.default_rng(seed)
    data = rng.integers(1, vocab, size=(n, seq_len))
    return [row.tolist() for row in data]


def _timed_fit(config, state: Dict[str, np.ndarray],
               sequences: Sequence[Sequence[int]], train_config: TrainConfig,
               obs: Optional[Observability]) -> Dict[str, object]:
    """One timed fit from the given initial weights; returns seconds + losses."""
    model = TransformerLM(config)
    model.load_state_dict(state)
    trainer = Trainer(model, pad_id=0, config=train_config, obs=obs)
    started = time.perf_counter()
    result = trainer.fit(sequences)
    elapsed = time.perf_counter() - started
    return {"seconds": elapsed, "losses": result.losses}


def run_train_benchmark(backbone: str = "grande", steps: int = 10,
                        batch_size: int = 8, seq_len: Optional[int] = None,
                        vocab: int = 256, repeats: int = 3, seed: int = 0,
                        lr: float = 1e-3,
                        obs: Optional[Observability] = None) -> Dict[str, object]:
    """Time ``steps`` training steps with fused kernels on vs off.

    Returns a JSON-serialisable report: per-side wall-clock, steps/sec,
    tokens/sec, the fused-over-composed speedup, both loss curves with their
    maximum absolute divergence, and (when ``obs`` is given or by default a
    private one) the fused run's metric-registry snapshot including the
    per-kernel call and saved-bytes counters.
    """
    if steps < 1 or batch_size < 1 or repeats < 1:
        raise ValueError("steps, batch_size and repeats must be >= 1")
    config = preset_config(backbone, vocab_size=vocab, seed=seed)
    if seq_len is None:
        seq_len = config.max_seq_len
    if seq_len < 2 or seq_len > config.max_seq_len:
        raise ValueError(
            f"seq_len must be in [2, {config.max_seq_len}], got {seq_len}")
    obs = obs if obs is not None else Observability()

    fused_cfg = dataclasses.replace(config, use_fused=True)
    composed_cfg = dataclasses.replace(config, use_fused=False)
    state = TransformerLM(config).state_dict()
    sequences = synthetic_sequences(steps * batch_size, seq_len, vocab,
                                    seed=seed)
    # Each epoch visits every batch once; epochs=1 gives exactly `steps`
    # optimiser steps.  bucket_by_length is moot (fixed-length sequences) but
    # off keeps the batch order seed-determined the same way on both sides.
    def train_config(use_fused: bool) -> TrainConfig:
        return TrainConfig(lr=lr, epochs=1, batch_size=batch_size,
                           warmup_frac=0.0, seed=seed,
                           bucket_by_length=False, use_fused=use_fused)

    # Warm-up: one full untimed fit per side.  BLAS thread spin-up, the
    # allocator's large-block cache, and the mask/RoPE caches all settle over
    # several steps, and an abbreviated warm-up leaves the first timed fit
    # measurably slower than steady state.
    for cfg, tc in ((fused_cfg, train_config(True)),
                    (composed_cfg, train_config(False))):
        model = TransformerLM(cfg)
        model.load_state_dict(state)
        Trainer(model, pad_id=0, config=tc).fit(sequences)

    # Interleave the timed rounds (fused fit, then composed fit, repeated)
    # so both sides sample the same machine conditions — on a busy box a
    # sequential best-of can hand one side a systematically quieter window.
    # min over rounds discards load spikes; the loss curves are
    # deterministic, so any round's curve represents its side.
    fused: Dict[str, object] = {"seconds": float("inf")}
    composed: Dict[str, object] = {"seconds": float("inf")}
    for round_idx in range(repeats):
        trial = _timed_fit(fused_cfg, state, sequences, train_config(True),
                           obs if round_idx == 0 else None)
        if trial["seconds"] < fused["seconds"]:
            fused = trial
        trial = _timed_fit(composed_cfg, state, sequences,
                           train_config(False), None)
        if trial["seconds"] < composed["seconds"]:
            composed = trial

    tokens_per_step = batch_size * (seq_len - 1)
    for side in (fused, composed):
        side["ms_per_step"] = side["seconds"] * 1e3 / steps
        side["steps_per_sec"] = steps / side["seconds"]
        side["tokens_per_sec"] = tokens_per_step * steps / side["seconds"]
    diffs = np.abs(np.asarray(fused["losses"]) - np.asarray(composed["losses"]))
    parity_ok = bool(np.allclose(fused["losses"], composed["losses"],
                                 rtol=PARITY_RTOL, atol=PARITY_ATOL))
    return {
        "backbone": backbone,
        "steps": steps,
        "batch_size": batch_size,
        "seq_len": seq_len,
        "vocab": vocab,
        "repeats": repeats,
        "tokens_per_step": tokens_per_step,
        "fused": fused,
        "composed": composed,
        "speedup": composed["seconds"] / fused["seconds"],
        "loss_max_abs_diff": float(diffs.max()),
        "parity_ok": parity_ok,
        "registry": obs.registry.snapshot(),
    }


def format_train_report(result: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_train_benchmark`."""
    fused, composed = result["fused"], result["composed"]
    lines = [
        f"workload : {result['steps']} steps x {result['batch_size']} seqs "
        f"x {result['seq_len']} tokens ({result['backbone']} backbone, "
        f"vocab {result['vocab']}, best of {result['repeats']})",
        f"composed : {composed['ms_per_step']:8.1f} ms/step  "
        f"{composed['steps_per_sec']:6.2f} steps/s  "
        f"{composed['tokens_per_sec']:9.0f} tok/s",
        f"fused    : {fused['ms_per_step']:8.1f} ms/step  "
        f"{fused['steps_per_sec']:6.2f} steps/s  "
        f"{fused['tokens_per_sec']:9.0f} tok/s",
        f"speedup  : {result['speedup']:8.2f}x",
        f"parity   : max |loss_fused - loss_composed| = "
        f"{result['loss_max_abs_diff']:.2e} "
        f"({'OK' if result['parity_ok'] else 'FAILED'})",
    ]
    return "\n".join(lines)


def write_snapshot(result: Dict[str, object], path) -> None:
    """Write the benchmark report as a JSON perf-trajectory snapshot."""
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
