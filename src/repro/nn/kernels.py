"""Fused training kernels: single-autograd-node hot-path operations.

The composed :mod:`repro.nn` graph spends most of a training step on
bookkeeping rather than math: attention alone records ~28 autograd nodes per
layer (head split/merge, the 7-node RoPE rotation applied twice, QK^T, scale,
mask-fill, softmax, @V, transposes), each allocating output buffers and
backward closures.  The kernels here collapse each hot region into **one**
autograd node with a hand-derived backward:

``fused_attention``
    RoPE rotation, head split, QK^T, scaling, causal masking, softmax, @V and
    head merge in a single forward over raw numpy arrays.  The backward is
    recomputation-free: it reuses the attention probabilities saved from the
    forward (the softmax Jacobian-vector product needs only ``probs``), and
    the RoPE rotation is undone with its transpose (the map is orthogonal).
``fused_cross_entropy``
    Stable log-softmax + target gather with ``ignore_index`` support.  The
    forward keeps only per-row ``max + logsumexp`` statistics (``O(N)``, not
    the ``O(N·V)`` log-probability matrix); the backward rebuilds
    ``softmax − one_hot`` directly from the logits, scaled by the valid-token
    mask.
``fused_rms_norm``
    RMS normalisation with learned scale; saves only the per-row inverse RMS.

Derivations (also in DESIGN.md §7):

* softmax: ``dS = P ⊙ (dP − Σ_j dP_j P_j)`` where ``P`` are the saved probs.
* RoPE: ``y = c ⊙ x + s ⊙ R x`` with ``R[x1, x2] = [−x2, x1]``, so
  ``dx = c ⊙ g + Rᵀ(s ⊙ g)`` with ``Rᵀ[u1, u2] = [u2, −u1]``.
* RMSNorm: with ``r = (mean(x²) + ε)^{−1/2}`` and ``gw = g ⊙ w``:
  ``dx = r·gw − x·r³·mean(gw ⊙ x)`` and ``dw = Σ_rows g ⊙ x·r``.
* cross-entropy: ``dlogits = (softmax(logits) − one_hot(t)) · mask / count``.

Every kernel is differentially tested against the composed-op reference
(float32 forward parity, float64 analytic-gradient parity, float64
finite-difference gradcheck) in ``tests/test_kernels.py``.

Observability is opt-in: :func:`set_kernel_observability` attaches an
:class:`~repro.obs.Observability` whose registry accumulates per-kernel call
counts and *saved-bytes* counters (intermediate buffers the composed graph
would have materialized but the fused node does not), and whose tracer
records one span per kernel call.  When no observer is attached the kernels
run with zero instrumentation overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor

#: Additive mask value for disallowed attention positions (matches the
#: composed path's ``masked_fill`` constant).
MASK_VALUE = -1e30

__all__ = [
    "MASK_VALUE", "causal_mask", "fused_attention", "fused_attention_qkv",
    "fused_attn_block", "fused_cross_entropy", "fused_gateup", "fused_linear",
    "fused_lm_loss", "fused_mlp_block", "fused_rms_norm", "fused_swiglu",
    "attention_nograd",
    "INT8_SCALE_SUFFIX", "quantize_int8", "dequantize_int8",
    "matmul_int8_nograd", "quantize_state_dict", "dequantize_state_dict",
    "is_quantized_state",
    "set_kernel_observability", "kernel_observability", "kernel_workspace",
]

#: Row-block size for the causally-tiled attention kernels.  A query row
#: ``i`` only attends to keys ``[0, i]``, so processing rows in blocks and
#: truncating each block's key range at its last row skips the strictly
#: upper-triangular portion of every ``(T, T)`` buffer — scores GEMM, mask,
#: softmax, ``@V`` and all four backward products.  Smaller blocks skip more
#: of the triangle but pay more prefix re-accumulation in the backward's
#: dK/dV sums; 64 is the empirical sweet spot at the backbone scales.
ATTN_BLOCK_ROWS = 64


# ---------------------------------------------------------------------------
# observability (opt-in)
# ---------------------------------------------------------------------------
_obs = None  # type: Optional[object]


def set_kernel_observability(obs):
    """Attach an :class:`repro.obs.Observability` to the kernel layer.

    Returns the previously attached observer (or ``None``) so callers can
    scope instrumentation::

        prev = set_kernel_observability(obs)
        try:
            ...
        finally:
            set_kernel_observability(prev)

    Pass ``None`` to detach.
    """
    global _obs
    prev = _obs
    _obs = obs
    return prev


def kernel_observability():
    """The currently attached kernel observer, or ``None``."""
    return _obs


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def _span(name: str, **meta):
    return _obs.span(name, **meta) if _obs is not None else _NULL_SPAN


def _count(kernel: str, saved_bytes: int) -> None:
    if _obs is None:
        return
    registry = _obs.registry
    registry.counter(f"kernels.{kernel}.calls").inc()
    registry.counter(f"kernels.{kernel}.saved_bytes").inc(saved_bytes)


# ---------------------------------------------------------------------------
# scratch workspace (free-list buffer pool)
# ---------------------------------------------------------------------------
class _Workspace:
    """Free-list pool of kernel scratch buffers keyed by ``(shape, dtype)``.

    numpy allocates every matmul/ufunc output fresh, and once the process
    heap is warm glibc serves multi-megabyte buffers straight from ``mmap`` —
    the page-fault churn of that map/touch/unmap cycle costs ~3x the
    arithmetic for the blocked attention score products (measured 2.7 ms vs
    0.9 ms with a preallocated ``out=``).  Kernels ``take`` scratch here and
    ``give`` it back once the backward has consumed it, so steady-state
    training reuses the same few dozen buffers with no allocator traffic at
    all.  Buffers saved for a backward that never runs (e.g. a forward under
    ``no_grad``) are simply garbage-collected; the pool only ever holds
    buffers explicitly returned.  Single-threaded by design, like the rest of
    the substrate.
    """

    __slots__ = ("max_per_key", "taken", "reused", "_pool")

    def __init__(self, max_per_key: int = 6) -> None:
        self.max_per_key = max_per_key
        self.taken = 0
        self.reused = 0
        self._pool = {}

    def take(self, shape, dtype) -> np.ndarray:
        """A buffer of ``shape``/``dtype`` with arbitrary contents."""
        self.taken += 1
        free = self._pool.get((tuple(shape), np.dtype(dtype)))
        if free:
            self.reused += 1
            return free.pop()
        return np.empty(shape, dtype)

    def give(self, arr: np.ndarray) -> None:
        """Return a buffer for reuse; the caller must hold the only live use."""
        if arr.base is not None or not arr.flags.c_contiguous:
            return
        key = (arr.shape, arr.dtype)
        free = self._pool.setdefault(key, [])
        if len(free) < self.max_per_key and not any(b is arr for b in free):
            free.append(arr)

    def clear(self) -> None:
        self._pool.clear()

    def stats(self) -> dict:
        pooled = sum(len(v) for v in self._pool.values())
        nbytes = sum(b.nbytes for v in self._pool.values() for b in v)
        return {"taken": self.taken, "reused": self.reused,
                "buffers": pooled, "bytes": nbytes}


_WS = _Workspace()


def kernel_workspace() -> _Workspace:
    """The kernels' shared scratch-buffer pool (stats / clear for tests)."""
    return _WS


# ---------------------------------------------------------------------------
# causal mask cache (satellite: one (T, T) bool allocation per seq length,
# LRU-bounded, shared by the fused and composed attention paths)
# ---------------------------------------------------------------------------
_MASK_CACHE: "OrderedDict[int, np.ndarray]" = OrderedDict()
_MASK_CACHE_MAX = 32


def causal_mask(seq_len: int) -> np.ndarray:
    """Boolean mask that is True at positions a query may NOT attend to.

    Cached per sequence length (LRU of :data:`_MASK_CACHE_MAX` entries) and
    returned read-only — callers share one array instead of allocating a
    fresh ``(T, T)`` buffer every forward.
    """
    mask = _MASK_CACHE.get(seq_len)
    if mask is None:
        mask = np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)
        mask.setflags(write=False)
        _MASK_CACHE[seq_len] = mask
        if len(_MASK_CACHE) > _MASK_CACHE_MAX:
            _MASK_CACHE.popitem(last=False)
    else:
        _MASK_CACHE.move_to_end(seq_len)
    return mask


# ---------------------------------------------------------------------------
# RoPE rotation helpers (numpy, shared by forward and backward)
# ---------------------------------------------------------------------------
def _rope_forward(x: np.ndarray, cos: np.ndarray, sin: np.ndarray,
                  out: Optional[np.ndarray] = None,
                  ws: Optional[_Workspace] = None) -> np.ndarray:
    """``x*cos + rotate_half(x)*sin`` with ``rotate_half([x1,x2]) = [-x2,x1]``.

    ``out`` (distinct from ``x``) receives the result; with ``ws`` the
    half-width cross terms go through one pooled scratch buffer instead of
    two fresh allocations.
    """
    half = x.shape[-1] // 2
    if out is None:
        out = x * cos
    else:
        np.multiply(x, cos, out=out)
    x1 = x[..., :half]
    x2 = x[..., half:]
    if ws is None:
        out[..., :half] -= x2 * sin[..., :half]
        out[..., half:] += x1 * sin[..., half:]
    else:
        tmp = ws.take(x2.shape, x.dtype)
        np.multiply(x2, sin[..., :half], out=tmp)
        out[..., :half] -= tmp
        np.multiply(x1, sin[..., half:], out=tmp)
        out[..., half:] += tmp
        ws.give(tmp)
    return out


def _rope_backward(g: np.ndarray, cos: np.ndarray, sin: np.ndarray,
                   out: Optional[np.ndarray] = None,
                   ws: Optional[_Workspace] = None) -> np.ndarray:
    """Transpose of :func:`_rope_forward`: ``cos*g + [g2, -g1]*sin``."""
    half = g.shape[-1] // 2
    if out is None:
        out = g * cos
    else:
        np.multiply(g, cos, out=out)
    g1 = g[..., :half]
    g2 = g[..., half:]
    if ws is None:
        out[..., :half] += g2 * sin[..., :half]
        out[..., half:] -= g1 * sin[..., half:]
    else:
        tmp = ws.take(g2.shape, g.dtype)
        np.multiply(g2, sin[..., :half], out=tmp)
        out[..., :half] += tmp
        np.multiply(g1, sin[..., half:], out=tmp)
        out[..., half:] -= tmp
        ws.give(tmp)
    return out


def _softmax_inplace(scores: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis, in the input buffer."""
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    return scores


#: Largest score magnitude for which ``exp`` needs no max-subtraction: with
#: float32 ``exp`` overflowing near 88 and row sums of at most a few thousand
#: terms, 80 leaves ample headroom (float64 is far safer still).
_SOFTMAX_SHIFT_THRESHOLD = 80.0


def _softmax_inplace_fast(scores: np.ndarray, redo=None) -> np.ndarray:
    """Softmax over the last axis that skips max-subtraction when safe.

    Without ``redo``, one global reduction decides stability for the whole
    buffer: if every score is below :data:`_SOFTMAX_SHIFT_THRESHOLD`,
    ``exp`` cannot overflow and the per-row max + subtraction passes are
    skipped (the normalisation works regardless of shift).

    With ``redo`` (a callable that re-fills ``scores`` with its raw,
    pre-``exp`` values, e.g. by repeating the score GEMM + mask), even the
    up-front max read is skipped: ``exp`` runs unshifted and the cheap
    per-row sums are checked after the fact — an overflowed row shows up as
    ``inf``/``nan`` and a fully-underflowed row as ``0``, in which case the
    scores are regenerated and the classic shift-by-max path runs.  Typical
    attention scores never trip it, so the fast path does no extra full
    pass at all.

    Masked entries at :data:`MASK_VALUE` underflow to exactly 0 either way.
    Callers must guarantee every row has at least one unmasked column (true
    for causal attention rows, which always see their own position); the
    padded-row case in the inference engines keeps the unconditional
    :func:`_softmax_inplace`.
    """
    if redo is None and scores.max() > _SOFTMAX_SHIFT_THRESHOLD:
        scores -= scores.max(axis=-1, keepdims=True)
    with np.errstate(over="ignore"):
        np.exp(scores, out=scores)
        s = scores.sum(axis=-1, keepdims=True)
    if redo is not None and (not np.isfinite(s).all() or s.min() <= 0.0):
        redo(scores)
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        s = scores.sum(axis=-1, keepdims=True)
    # Normalise by a reciprocal-multiply: one divide per row instead of one
    # per element (vector divides cost ~2x a multiply per lane).
    np.reciprocal(s, out=s)
    scores *= s
    return scores


# ---------------------------------------------------------------------------
# fused attention
# ---------------------------------------------------------------------------
def _attn_blocks(seq: int, causal: bool):
    """Row-block bounds ``(i0, i1)`` for the causally-tiled attention core.

    With ``causal`` tiling, rows ``[i0, i1)`` only need key columns
    ``[0, i1)``; without it everything is one block over all columns.
    """
    if not causal or seq <= ATTN_BLOCK_ROWS:
        return [(0, seq)]
    return [(i0, min(i0 + ATTN_BLOCK_ROWS, seq))
            for i0 in range(0, seq, ATTN_BLOCK_ROWS)]


def _attn_forward(qs: np.ndarray, kh: np.ndarray, vh: np.ndarray,
                  causal: bool, out: Optional[np.ndarray] = None):
    """Blocked attention forward over pre-scaled queries ``qs``.

    Returns ``(ctx_h, probs_blocks)``: the context is a workspace buffer the
    caller must merge out of and ``give`` back — unless ``out`` is given
    (e.g. a head-strided view of a flat merge buffer), in which case the
    per-block context GEMMs write straight through it and no merge copy is
    needed.  ``probs_blocks`` holds one pooled attention-probability array
    per row block — the only quadratic state the backward needs.  Masked
    (strictly future) columns beyond each block's key range are never
    computed; inside the diagonal block the standard causal mask applies.
    """
    seq = qs.shape[-2]
    blocks = _attn_blocks(seq, causal)
    lead = qs.shape[:-2]
    ctx = out if out is not None else _WS.take(qs.shape, qs.dtype)
    probs_blocks = []
    for i0, i1 in blocks:
        scores = _WS.take(lead + (i1 - i0, i1), qs.dtype)

        def fill(buf, i0=i0, i1=i1):
            np.matmul(qs[..., i0:i1, :], kh[..., :i1, :].swapaxes(-1, -2),
                      out=buf)
            if causal and i1 - i0 > 1:
                np.copyto(buf[..., i0:i1], MASK_VALUE,
                          where=causal_mask(i1 - i0))

        fill(scores)
        probs = _softmax_inplace_fast(scores, redo=fill)
        np.matmul(probs, vh[..., :i1, :], out=ctx[..., i0:i1, :])
        probs_blocks.append(probs)
    return ctx, probs_blocks


def _attn_backward(gh: np.ndarray, qs: np.ndarray, kh: np.ndarray,
                   vh: np.ndarray, probs_blocks, causal: bool, scale: float,
                   dots: Optional[np.ndarray] = None,
                   out: Optional[tuple] = None):
    """Backward of :func:`_attn_forward`; returns ``(dqs_unscaled, dk, dv)``.

    ``dqs_unscaled`` is the gradient w.r.t. the *pre-scaled* queries with the
    forward's ``scale`` folded back in, i.e. the gradient w.r.t. the original
    (unscaled) q.  Without ``out`` all three results are workspace buffers
    the caller must ``give`` back; with ``out=(dq, dk, dv)`` the results are
    written into the given arrays instead (strided views are fine — e.g.
    head slices of a packed ``(B, T, 3D)`` gradient buffer), which must not
    alias ``qs``/``kh``/``vh``.  ``probs_blocks`` are consumed and returned
    to the pool.

    ``dots`` is the optional FlashAttention-style delta vector of shape
    ``lead + (seq,)``: the softmax-backward row reduction
    ``Σ_k dP_ik · P_ik`` equals ``g_i · ctx_i``, so a caller holding the
    forward's context can hand it in as one thin einsum instead of paying a
    per-block ``(rows, i1)`` reduction here.
    """
    seq = gh.shape[-2]
    blocks = _attn_blocks(seq, causal)
    if out is not None:
        dq, dk, dv = out
    else:
        dq = _WS.take(qs.shape, qs.dtype)
        dk = _WS.take(kh.shape, kh.dtype)
        dv = _WS.take(vh.shape, vh.dtype)
    head_dim = kh.shape[-1]
    lead = kh.shape[:-2]
    # The last row block's key range [0, seq) covers everyone else's, so
    # processing it first lets its dK/dV contributions assign straight into
    # the full output buffers — no zero-fill pass, and the largest block
    # skips the scratch-then-accumulate round trip entirely.
    first = True
    for (i0, i1), probs in zip(reversed(blocks), reversed(probs_blocks)):
        gh_b = gh[..., i0:i1, :]
        dp = _WS.take(probs.shape, probs.dtype)
        np.matmul(gh_b, vh[..., :i1, :].swapaxes(-1, -2), out=dp)
        if first:
            np.matmul(probs.swapaxes(-1, -2), gh_b, out=dv[..., :i1, :])
        else:
            tmp = _WS.take(lead + (i1, head_dim), kh.dtype)
            np.matmul(probs.swapaxes(-1, -2), gh_b, out=tmp)
            dv[..., :i1, :] += tmp
        # Softmax backward in the dp buffer; the einsum row-dot avoids a
        # second (rows, i1) temporary (skipped entirely when the caller
        # supplied the delta vector).
        if dots is not None:
            dot = dots[..., i0:i1]
        else:
            dot = np.einsum("...ij,...ij->...i", dp, probs)
        dp -= dot[..., None]
        dp *= probs
        dqb = dq[..., i0:i1, :]
        np.matmul(dp, kh[..., :i1, :], out=dqb)
        if scale != 1.0:
            dqb *= scale
        if first:
            np.matmul(dp.swapaxes(-1, -2), qs[..., i0:i1, :],
                      out=dk[..., :i1, :])
            first = False
        else:
            np.matmul(dp.swapaxes(-1, -2), qs[..., i0:i1, :], out=tmp)
            dk[..., :i1, :] += tmp
            _WS.give(tmp)
        _WS.give(dp)
        _WS.give(probs)
    return dq, dk, dv


def _probs_bytes(probs_blocks) -> int:
    return sum(p.nbytes for p in probs_blocks)


def _split_heads_into(buf: np.ndarray, a: np.ndarray, batch: int, seq: int,
                      n_heads: int, head_dim: int) -> np.ndarray:
    """Copy ``(B, T, H*Dh)`` data into a ``(B, H, T, Dh)`` workspace buffer.

    One strided copy — the reshape is a view of contiguous ``a`` and the
    transpose only permutes strides.
    """
    np.copyto(buf, a.reshape(batch, seq, n_heads, head_dim).transpose(0, 2, 1, 3))
    return buf


def fused_attention(q: Tensor, k: Tensor, v: Tensor, n_heads: int, *,
                    rope_cos: Optional[np.ndarray] = None,
                    rope_sin: Optional[np.ndarray] = None,
                    causal: bool = True,
                    scale: Optional[float] = None) -> Tensor:
    """Single-node scaled-dot-product attention over projected Q/K/V.

    Parameters
    ----------
    q, k, v:
        Projected activations of shape ``(B, T, D)`` (pre head-split).
    n_heads:
        Number of attention heads; ``D`` must be divisible by it.
    rope_cos, rope_sin:
        Optional RoPE tables of shape ``(T, D // n_heads)``; when given, the
        rotation is applied to Q and K inside the kernel (and transposed in
        the backward).
    causal:
        Apply the standard causal mask (cached per sequence length) with
        row-block tiling that skips the masked upper triangle entirely.
    scale:
        Score scaling; defaults to ``1/sqrt(head_dim)``.  Folded into Q once
        up front rather than spent as a full pass over the score matrix.

    Returns the head-merged context of shape ``(B, T, D)`` as **one**
    autograd node whose backward reuses the attention probabilities saved
    from the forward — no recomputation, no intermediate graph.
    """
    batch, seq, dim = q.shape
    if dim % n_heads != 0:
        raise ValueError(f"dim={dim} must be divisible by n_heads={n_heads}")
    head_dim = dim // n_heads
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    hshape = (batch, n_heads, seq, head_dim)

    def split(a: np.ndarray) -> np.ndarray:
        # (B, T, D) -> (B, H, T, Dh) in a pooled contiguous buffer.
        return _split_heads_into(_WS.take(hshape, a.dtype), a,
                                 batch, seq, n_heads, head_dim)

    def merge(a: np.ndarray) -> np.ndarray:
        # (B, H, T, Dh) -> (B, T, D); the reshape of the transposed view
        # copies into a fresh array (it escapes into the autograd graph).
        return a.transpose(0, 2, 1, 3).reshape(batch, seq, dim)

    with _span("kernels.fused_attention", batch=batch, seq=seq,
               heads=n_heads):
        qs, kh, vh = split(q.data), split(k.data), split(v.data)
        if rope_cos is not None:
            qr = _rope_forward(qs, rope_cos, rope_sin,
                               out=_WS.take(hshape, qs.dtype), ws=_WS)
            _WS.give(qs)
            qs = qr
            kr = _rope_forward(kh, rope_cos, rope_sin,
                               out=_WS.take(hshape, kh.dtype), ws=_WS)
            _WS.give(kh)
            kh = kr
        qs *= scale  # fold the score scaling into the small Q buffer
        ctx_h, probs_blocks = _attn_forward(qs, kh, vh, causal)
        ctx = merge(ctx_h)
        _WS.give(ctx_h)

        requires = q.requires_grad or k.requires_grad or v.requires_grad
        out = Tensor(ctx, requires_grad=requires,
                     _children=(q, k, v) if requires else (),
                     _op="fused_attention")
        # Composed-graph intermediates this node does not materialize: the
        # scale-mul and mask-fill (B,H,T,T) outputs plus the skipped upper
        # triangle, and the 8 RoPE temporaries per rotated tensor.
        saved = 2 * _probs_bytes(probs_blocks)
        if rope_cos is not None:
            saved += 8 * qs.nbytes
        _count("fused_attention", saved)

    if not out.requires_grad:
        for p in probs_blocks:
            _WS.give(p)
        _WS.give(qs)
        _WS.give(kh)
        _WS.give(vh)
        return out

    def _backward() -> None:
        with _span("kernels.fused_attention.backward", batch=batch, seq=seq):
            gh = split(out.grad)
            dqh, dkh, dvh = _attn_backward(gh, qs, kh, vh, probs_blocks,
                                           causal, scale)
            _WS.give(gh)
            if rope_cos is not None:
                dq2 = _rope_backward(dqh, rope_cos, rope_sin,
                                     out=_WS.take(hshape, dqh.dtype), ws=_WS)
                _WS.give(dqh)
                dqh = dq2
                dk2 = _rope_backward(dkh, rope_cos, rope_sin,
                                     out=_WS.take(hshape, dkh.dtype), ws=_WS)
                _WS.give(dkh)
                dkh = dk2
            if q.requires_grad:
                q._accumulate_owned(merge(dqh))
            if k.requires_grad:
                k._accumulate_owned(merge(dkh))
            if v.requires_grad:
                v._accumulate_owned(merge(dvh))
            for buf in (dqh, dkh, dvh, qs, kh, vh):
                _WS.give(buf)

    out._backward = _backward
    return out


def fused_attention_qkv(x: Tensor, wq: Tensor, wk: Tensor, wv: Tensor,
                        n_heads: int, *,
                        rope_cos: Optional[np.ndarray] = None,
                        rope_sin: Optional[np.ndarray] = None,
                        causal: bool = True,
                        scale: Optional[float] = None) -> Tensor:
    """Projections *and* attention as one autograd node.

    Concatenates the three bias-free projection weights so Q, K and V come
    out of a single ``(N, D) @ (D, 3D)`` GEMM, then runs the same blocked
    attention core as :func:`fused_attention`.  The backward mirrors it: the
    three per-tensor gradients are merged into one ``(B, T, 3D)`` buffer,
    giving one GEMM for ``dx`` and one for the stacked weight gradient
    (written at parameter shape through disjoint row views — no per-weight
    unbroadcast or defensive copy).

    Used by :class:`~repro.nn.attention.MultiHeadSelfAttention` when its
    projections are plain bias-free :class:`~repro.nn.layers.Linear` modules;
    wrapped projections (e.g. LoRA adapters) fall back to
    :func:`fused_attention` over separately projected tensors.
    """
    batch, seq, dim = x.shape
    if dim % n_heads != 0:
        raise ValueError(f"dim={dim} must be divisible by n_heads={n_heads}")
    head_dim = dim // n_heads
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    dt = x.data.dtype
    hshape = (batch, n_heads, seq, head_dim)

    with _span("kernels.fused_attention_qkv", batch=batch, seq=seq,
               heads=n_heads):
        w_cat = _WS.take((3 * dim, dim), dt)  # stacked (3D, D) weights
        np.concatenate([wq.data, wk.data, wv.data], axis=0, out=w_cat)
        qkv = _WS.take((batch, seq, 3 * dim), dt)
        # One GEMM projects all three; the (B,T,3,H,Dh) view of the packed
        # buffer makes each third's head split a single strided copy.
        np.matmul(x.data.reshape(-1, dim), w_cat.T,
                  out=qkv.reshape(-1, 3 * dim))
        qkv5 = qkv.reshape(batch, seq, 3, n_heads, head_dim)

        def split(part: int) -> np.ndarray:
            buf = _WS.take(hshape, dt)
            np.copyto(buf, qkv5[:, :, part].transpose(0, 2, 1, 3))
            return buf

        qs0, kh0, vh = split(0), split(1), split(2)
        _WS.give(qkv)  # backward rebuilds its gradient in a fresh buffer
        if rope_cos is not None:
            qs = _rope_forward(qs0, rope_cos, rope_sin,
                               out=_WS.take(hshape, dt), ws=_WS)
            _WS.give(qs0)
            kh = _rope_forward(kh0, rope_cos, rope_sin,
                               out=_WS.take(hshape, dt), ws=_WS)
            _WS.give(kh0)
        else:
            qs, kh = qs0, kh0
        qs *= scale
        ctx_h, probs_blocks = _attn_forward(qs, kh, vh, causal)
        ctx = ctx_h.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        _WS.give(ctx_h)

        children = (x, wq, wk, wv)
        requires = any(t.requires_grad for t in children)
        out = Tensor(ctx, requires_grad=requires,
                     _children=children if requires else (),
                     _op="fused_attention_qkv")
        # On top of fused_attention's savings, the three separate projection
        # outputs and their three (B, T, D) gradient buffers collapse into
        # the packed qkv array.
        saved = 2 * _probs_bytes(probs_blocks) + 2 * qkv.nbytes
        if rope_cos is not None:
            saved += 8 * qs.nbytes
        _count("fused_attention_qkv", saved)

    if not out.requires_grad:
        for p in probs_blocks:
            _WS.give(p)
        for buf in (qs, kh, vh, w_cat):
            _WS.give(buf)
        return out

    def _backward() -> None:
        with _span("kernels.fused_attention_qkv.backward", batch=batch,
                   seq=seq):
            gh = _split_heads_into(_WS.take(hshape, dt), out.grad,
                                   batch, seq, n_heads, head_dim)
            dqh, dkh, dvh = _attn_backward(gh, qs, kh, vh, probs_blocks,
                                           causal, scale)
            _WS.give(gh)
            if rope_cos is not None:
                dq2 = _rope_backward(dqh, rope_cos, rope_sin,
                                     out=_WS.take(hshape, dt), ws=_WS)
                _WS.give(dqh)
                dqh = dq2
                dk2 = _rope_backward(dkh, rope_cos, rope_sin,
                                     out=_WS.take(hshape, dt), ws=_WS)
                _WS.give(dkh)
                dkh = dk2
            dqkv = _WS.take((batch, seq, 3 * dim), dt)
            dqkv5 = dqkv.reshape(batch, seq, 3, n_heads, head_dim)
            for part, dpart in enumerate((dqh, dkh, dvh)):
                np.copyto(dqkv5[:, :, part], dpart.transpose(0, 2, 1, 3))
                _WS.give(dpart)
            g2 = dqkv.reshape(-1, 3 * dim)
            if x.requires_grad:
                x._accumulate_owned((g2 @ w_cat).reshape(batch, seq, dim))
            if wq.requires_grad or wk.requires_grad or wv.requires_grad:
                dw_cat = g2.T @ x.data.reshape(-1, dim)  # (3D, D), one GEMM
                # Row slices of dw_cat are disjoint, so handing out views is
                # safe for later in-place accumulation.
                wq._accumulate_owned(dw_cat[:dim])
                wk._accumulate_owned(dw_cat[dim:2 * dim])
                wv._accumulate_owned(dw_cat[2 * dim:])
            for buf in (dqkv, qs, kh, vh, w_cat):
                _WS.give(buf)

    out._backward = _backward
    return out


def attention_nograd(q: np.ndarray, k: np.ndarray, v: np.ndarray, *,
                     scale: Optional[float] = None,
                     causal_tail: int = 0,
                     invalid: Optional[np.ndarray] = None) -> np.ndarray:
    """No-grad fused attention forward for the inference engines.

    ``q`` is ``(..., Tq, Dh)`` against keys/values ``(..., Tk, Dh)`` with
    ``Tk >= Tq``.  ``causal_tail = t`` applies the causal pattern to the last
    ``t`` key columns (the engines' prefill shape: the earlier KV-cache
    prefix is fully visible, only the new block is triangular).  ``invalid``
    is an optional boolean mask (broadcastable to the score shape) of
    positions to exclude, e.g. ragged batch padding in fused decode.
    Score masking, softmax and normalisation run in one buffer.
    """
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    scores = q @ k.swapaxes(-1, -2)
    scores *= scale
    if causal_tail > 1:
        np.copyto(scores[..., -causal_tail:], MASK_VALUE,
                  where=causal_mask(causal_tail))
    if invalid is not None:
        np.copyto(scores, MASK_VALUE, where=invalid)
    return _softmax_inplace(scores) @ v


# ---------------------------------------------------------------------------
# int8 weight quantization (no-grad serve path)
# ---------------------------------------------------------------------------
#: Key suffix marking a per-channel scale vector in a quantized state dict.
INT8_SCALE_SUFFIX = "::scale"

#: 2-D weights that stay fp32 under :func:`quantize_state_dict`.  The token
#: embedding is a gather table, not a matmul operand, so quantizing it buys
#: no fused-kernel win and costs accuracy at the model's very first op.
_QUANT_SKIP = ("tok_emb.weight",)


def quantize_int8(weight: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantization of a ``(out, in)`` matrix.

    Each output row gets its own scale ``max(|row|) / 127`` so rows with
    small dynamic range keep precision (per-tensor scaling would burn the
    whole int8 budget on the largest row).  All-zero rows get scale 1 so the
    division is defined and dequantizes back to exact zeros.  Returns
    ``(q, scales)`` with ``q`` int8 of the same shape and ``scales`` a
    float vector of length ``out``.

    The map is a near-projection: ``quantize(dequantize(q, s))`` recovers
    ``q`` exactly (``max|q| == 127`` whenever the row is non-zero, so the
    recovered scale is within 1 ulp of ``s`` and the re-rounded integers
    cannot move).  The fleet path does not even rely on that: quantized
    state dicts are published and consumed verbatim, never re-quantized.
    """
    if weight.ndim != 2:
        raise ValueError(f"expected a 2-D weight, got shape {weight.shape}")
    scales = np.abs(weight).max(axis=1) / np.float64(127.0)
    scales = np.where(scales == 0.0, 1.0, scales).astype(weight.dtype)
    q = np.rint(weight / scales[:, None]).astype(np.int8)
    return q, scales


def dequantize_int8(q: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Reconstruct the fp matrix ``q * scales[:, None]`` (the serve oracle)."""
    return q.astype(scales.dtype) * scales[:, None]


def matmul_int8_nograd(x: np.ndarray, q: np.ndarray,
                       scales: np.ndarray) -> np.ndarray:
    """Fused dequant-matmul: ``x @ dequantize(q, scales).T`` without ever
    materialising the fp32 weight matrix persistently.

    The int8 matrix is cast into a pooled scratch buffer (steady-state
    decode reuses the same buffer, no allocator traffic), the GEMM runs
    against it, and the per-channel scales are applied to the *output* —
    ``(x @ qᵀ) · s`` instead of ``x @ (q · s)ᵀ`` — which touches ``(B, out)``
    floats instead of ``(out, in)``.  The two orderings are algebraically
    identical and agree to float rounding; token-level parity with the
    dequantized dense oracle is what the differential suite asserts.
    """
    with _span("kernels.matmul_int8", shape=tuple(q.shape)):
        dtype = scales.dtype
        wf = _WS.take(q.shape, dtype)
        np.copyto(wf, q, casting="safe")
        out = x @ wf.T
        out *= scales
        _WS.give(wf)
        # Saved bytes: the persistent fp32 copy a dequantize-ahead-of-time
        # path would keep alive (3 of the 4 bytes per weight element).
        _count("matmul_int8", 3 * q.size)
    return out


def is_quantized_state(state: dict) -> bool:
    """Whether a state dict came from :func:`quantize_state_dict`."""
    return any(key.endswith(INT8_SCALE_SUFFIX) for key in state)


def quantize_state_dict(state: dict) -> dict:
    """Quantize every 2-D matmul weight of a model state dict to int8.

    Each quantized entry ``name`` becomes an int8 array plus a companion
    ``name + "::scale"`` float vector; norms (1-D) and the token embedding
    pass through untouched.  The result is what the fleet publishes to the
    shared-memory arena — roughly a quarter of the fp32 footprint — and
    what :class:`~repro.serve.engine.BatchedEngine` consumes directly in
    int8 mode, so replicas never re-quantize (re-quantization is exact,
    but using the published ``(q, s)`` verbatim makes parity structural).
    """
    if is_quantized_state(state):
        return state
    out = {}
    for name, tensor in state.items():
        if tensor.ndim == 2 and name.endswith("weight") \
                and name not in _QUANT_SKIP:
            q, scales = quantize_int8(tensor)
            out[name] = q
            out[name + INT8_SCALE_SUFFIX] = scales
        else:
            out[name] = tensor
    return out


def dequantize_state_dict(state: dict) -> dict:
    """Invert :func:`quantize_state_dict` into a plain fp state dict.

    This is the *oracle model* for int8 serving: an engine built from the
    dequantized weights in exact mode defines the token streams the fused
    int8 path must reproduce byte-for-byte.
    """
    out = {}
    for name, tensor in state.items():
        if name.endswith(INT8_SCALE_SUFFIX):
            continue
        scale = state.get(name + INT8_SCALE_SUFFIX)
        out[name] = tensor if scale is None else dequantize_int8(tensor, scale)
    return out


# ---------------------------------------------------------------------------
# fused RMSNorm
# ---------------------------------------------------------------------------
def fused_rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """``x / sqrt(mean(x², -1) + eps) * weight`` as one autograd node.

    Saves only the per-row inverse RMS ``r`` for the backward (the composed
    path keeps ~5 full-size intermediates alive in the graph).
    """
    with _span("kernels.fused_rms_norm", shape=tuple(x.shape)):
        xd, wd = x.data, weight.data
        ms = np.mean(np.square(xd), axis=-1, keepdims=True)
        ms += eps
        r = 1.0 / np.sqrt(ms)  # (..., 1)
        y = xd * r
        y *= wd
        requires = x.requires_grad or weight.requires_grad
        out = Tensor(y, requires_grad=requires,
                     _children=(x, weight) if requires else (),
                     _op="fused_rms_norm")
        _count("fused_rms_norm", 3 * xd.nbytes)

    if not out.requires_grad:
        return out

    def _backward() -> None:
        g = out.grad
        if weight.requires_grad:
            gw_sum = (g * x.data * r).reshape(-1, wd.shape[-1]).sum(axis=0)
            weight._accumulate_owned(gw_sum)
        if x.requires_grad:
            gw = g * wd
            inner = np.mean(gw * x.data, axis=-1, keepdims=True)
            dx = gw
            dx *= r
            dx -= x.data * (r ** 3 * inner)
            x._accumulate_owned(dx)

    out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# fused linear projection
# ---------------------------------------------------------------------------
def fused_linear(x: Tensor, weight: Tensor,
                 bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight.T (+ bias)`` as one autograd node.

    The composed expression records a transpose node, a matmul node and (with
    bias) an add node; its weight gradient goes through a batched
    ``(B, in, out)`` temporary, an unbroadcast sum and a defensive copy.  Here
    the backward collapses the batch dimensions first — one ``(out, N)`` ×
    ``(N, in)`` GEMM writes the weight gradient directly at parameter shape —
    and hands freshly-allocated buffers straight to the accumulator.

    No span is recorded (this is the highest-frequency, cheapest kernel); the
    call/saved-bytes counters still tick when an observer is attached.
    """
    xd, wd = x.data, weight.data
    y = xd @ wd.T
    if bias is not None:
        y += bias.data
    children = (x, weight) if bias is None else (x, weight, bias)
    requires = any(t.requires_grad for t in children)
    out = Tensor(y, requires_grad=requires,
                 _children=children if requires else (),
                 _op="fused_linear")
    # Composed-graph temporaries avoided: the batched weight-grad buffer
    # (leading batch dims × weight size) and, with bias, the add output.
    saved = 0
    if xd.ndim > 2:
        saved += int(np.prod(xd.shape[:-2])) * wd.size * xd.itemsize
    if bias is not None:
        saved += y.nbytes
    _count("fused_linear", saved)

    if not out.requires_grad:
        return out

    def _backward() -> None:
        g = out.grad
        if x.requires_grad:
            x._accumulate_owned(g @ wd)
        need_bias = bias is not None and bias.requires_grad
        if weight.requires_grad or need_bias:
            g2 = g.reshape(-1, wd.shape[0])
            if weight.requires_grad:
                weight._accumulate_owned(g2.T @ xd.reshape(-1, wd.shape[1]))
            if need_bias:
                bias._accumulate_owned(g2.sum(axis=0))

    out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# fused SwiGLU gate
# ---------------------------------------------------------------------------
def fused_swiglu(gate: Tensor, up: Tensor) -> Tensor:
    """``silu(gate) * up`` as one autograd node (the SwiGLU MLP gate).

    The composed path records a silu node and a mul node, each materializing
    a full ``(B, T, hidden)`` output plus two backward temporaries; the fused
    node saves only the sigmoid activations it needs for both factors of the
    backward:

    ``dgate = g ⊙ up ⊙ σ(gate) ⊙ (1 + gate ⊙ (1 − σ(gate)))``,
    ``dup = g ⊙ gate ⊙ σ(gate)``.
    """
    with _span("kernels.fused_swiglu", shape=tuple(gate.shape)):
        gd, ud = gate.data, up.data
        sig = 1.0 / (1.0 + np.exp(-gd))
        silu_g = gd * sig
        y = silu_g * ud
        requires = gate.requires_grad or up.requires_grad
        out = Tensor(y, requires_grad=requires,
                     _children=(gate, up) if requires else (),
                     _op="fused_swiglu")
        _count("fused_swiglu", 2 * gd.nbytes)

    if not out.requires_grad:
        return out

    def _backward() -> None:
        g = out.grad
        if gate.requires_grad:
            local = gd * (1.0 - sig)
            local += 1.0
            local *= sig
            local *= ud
            local *= g
            gate._accumulate_owned(local)
        if up.requires_grad:
            dup = g * silu_g
            up._accumulate_owned(dup)

    out._backward = _backward
    return out


def fused_gateup(x: Tensor, w_gate: Tensor, w_up: Tensor) -> Tensor:
    """Gate/up projections plus the SwiGLU gate as one autograd node.

    Computes ``silu(x @ w_gate.T) * (x @ w_up.T)`` with both projections
    packed into a single ``(N, D) @ (D, 2H)`` GEMM; the backward likewise
    writes both local gradients into one ``(B, T, 2H)`` buffer, yielding one
    GEMM for ``dx`` and one for the stacked weight gradient.

    Used by :class:`~repro.nn.layers.FeedForward` when its projections are
    plain bias-free :class:`~repro.nn.layers.Linear` modules; wrapped
    projections (e.g. LoRA) fall back to :func:`fused_swiglu` over separately
    projected tensors.
    """
    dim = x.shape[-1]
    hidden = w_gate.shape[0]
    dt = x.data.dtype
    lead = tuple(x.shape[:-1])
    with _span("kernels.fused_gateup", shape=tuple(x.shape), hidden=hidden):
        w_cat = _WS.take((2 * hidden, dim), dt)  # stacked (2H, D) weights
        np.concatenate([w_gate.data, w_up.data], axis=0, out=w_cat)
        gu = _WS.take(lead + (2 * hidden,), dt)
        # One GEMM for both projections.
        np.matmul(x.data.reshape(-1, dim), w_cat.T,
                  out=gu.reshape(-1, 2 * hidden))
        gd = gu[..., :hidden]
        ud = gu[..., hidden:]
        sig = _WS.take(lead + (hidden,), dt)
        np.negative(gd, out=sig)
        np.exp(sig, out=sig)
        sig += 1.0
        np.reciprocal(sig, out=sig)  # sigmoid(gate), saved for the backward
        silu_g = _WS.take(lead + (hidden,), dt)
        np.multiply(gd, sig, out=silu_g)
        y = silu_g * ud
        children = (x, w_gate, w_up)
        requires = any(t.requires_grad for t in children)
        out = Tensor(y, requires_grad=requires,
                     _children=children if requires else (),
                     _op="fused_gateup")
        # The separate gate/up projection outputs, the silu node output and
        # the two (B, T, H) gradient temporaries never materialize.
        _count("fused_gateup", gu.nbytes + 3 * gd.nbytes)

    if not out.requires_grad:
        for buf in (gu, sig, silu_g, w_cat):
            _WS.give(buf)
        return out

    def _backward() -> None:
        with _span("kernels.fused_gateup.backward", shape=tuple(x.shape)):
            g = out.grad
            # dgate = g * up * sig * (1 + gate * (1 - sig)), built in a
            # contiguous scratch buffer (writing through the strided dgu
            # half-views on every pass costs ~2x memory bandwidth).
            dg = _WS.take(lead + (hidden,), dt)
            np.subtract(1.0, sig, out=dg)
            dg *= gd
            dg += 1.0
            dg *= sig
            dg *= ud
            dg *= g
            dgu = _WS.take(lead + (2 * hidden,), dt)
            dgu[..., :hidden] = dg
            np.multiply(g, silu_g, out=dg)  # reuse the scratch for dup
            dgu[..., hidden:] = dg
            g2 = dgu.reshape(-1, 2 * hidden)
            if x.requires_grad:
                x._accumulate_owned((g2 @ w_cat).reshape(x.shape))
            if w_gate.requires_grad or w_up.requires_grad:
                dw_cat = g2.T @ x.data.reshape(-1, dim)  # (2H, D), one GEMM
                w_gate._accumulate_owned(dw_cat[:hidden])
                w_up._accumulate_owned(dw_cat[hidden:])
            for buf in (dg, dgu, gu, sig, silu_g, w_cat):
                _WS.give(buf)

    out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# sublayer mega-kernels: pre-norm + projections + core + residual in one node
# ---------------------------------------------------------------------------
def _rms_fwd(xd: np.ndarray, wd: np.ndarray, eps: float):
    """RMSNorm forward over raw arrays: returns ``(r, xn)``.

    ``r`` is the per-row inverse RMS ``(..., 1)`` (small, heap-allocated);
    ``xn = x * r * w`` lives in a workspace buffer the caller owns.
    """
    dim = xd.shape[-1]
    ms = np.einsum("...d,...d->...", xd, xd)
    ms /= dim
    ms += eps
    r = (1.0 / np.sqrt(ms))[..., None]
    xn = _WS.take(xd.shape, xd.dtype)
    np.multiply(xd, r, out=xn)
    xn *= wd
    return r, xn


def _rms_bwd(dxn: np.ndarray, xd: np.ndarray, r: np.ndarray, wd: np.ndarray):
    """Backward of ``xn = x * r * w`` given upstream ``dxn``.

    Returns ``(dx, dnw)`` — ``dx`` freshly allocated (it escapes into the
    autograd accumulator), ``dnw`` the weight gradient row sum.  ``dxn`` is
    clobbered (scaled by ``w`` in place); the caller gives it back afterwards.
    """
    dim = xd.shape[-1]
    tmp = _WS.take(xd.shape, xd.dtype)
    np.multiply(xd, r, out=tmp)
    tmp *= dxn
    dnw = tmp.reshape(-1, dim).sum(axis=0)
    dxn *= wd  # gw = g ⊙ w
    inner = np.einsum("...d,...d->...", dxn, xd)[..., None]
    inner /= dim
    dx = np.multiply(dxn, r)
    inner *= r
    inner *= r
    inner *= r  # r³ · mean(gw ⊙ x)
    np.multiply(xd, inner, out=tmp)
    dx -= tmp
    _WS.give(tmp)
    return dx, dnw


def _rms_fwd_pre(xd: np.ndarray, eps: float):
    """Weight-free RMSNorm forward: returns ``(r, xh)`` with ``xh = x * r``.

    The sublayer mega-kernels fold the norm weight into the columns of the
    packed projection matrix instead of scaling the activations, so the
    normalised ``xh`` (not ``xh * w``) is what feeds the GEMM and what the
    weight-gradient GEMM reads back.
    """
    dim = xd.shape[-1]
    ms = np.einsum("...d,...d->...", xd, xd)
    ms /= dim
    ms += eps
    r = (1.0 / np.sqrt(ms))[..., None]
    xh = _WS.take(xd.shape, xd.dtype)
    np.multiply(xd, r, out=xh)
    return r, xh


def _rms_bwd_pre(dxh: np.ndarray, xd: np.ndarray, r: np.ndarray):
    """Backward of ``xh = x * r`` given upstream ``dxh``; returns fresh ``dx``.

    ``dx = r·dxh − x·r³·mean(dxh ⊙ x)``.  The norm-weight gradient is not
    produced here — with the weight folded into the projection matrix it
    falls out of that matrix's gradient instead.
    """
    dim = xd.shape[-1]
    inner = np.einsum("...d,...d->...", dxh, xd)[..., None]
    inner /= dim
    dx = np.multiply(dxh, r)
    inner *= r
    inner *= r
    inner *= r
    tmp = _WS.take(xd.shape, xd.dtype)
    np.multiply(xd, inner, out=tmp)
    dx -= tmp
    _WS.give(tmp)
    return dx


#: Tiled full-width RoPE tables keyed by the cast table backing array: the
#: per-head ``(T, Dh)`` cos/sin pair expands to ``(T, H·Dh)`` with the
#: rotate-half sign folded into sin, so the rotation runs as three wide
#: elementwise passes over ``(B, T, D)`` slices instead of four half-width
#: strided passes per head layout.
_ROPE_TILE_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_ROPE_TILE_MAX = 8


def _rope_tiled(cos: np.ndarray, sin: np.ndarray, n_heads: int):
    """Return ``(cos_t, sin_t, sin_bt)`` tiled to ``(T, H·Dh)``.

    ``sin_t`` carries the forward rotate-half signs ``[−sin₁, +sin₂]`` per
    head; ``sin_bt = −sin_t`` is the transpose (backward) variant.  Cached
    per (table identity, seq, heads) — the cast tables inside
    :class:`~repro.nn.attention.RopeTable` are long-lived, and the cache
    entry keeps the backing array alive so ``id`` cannot be recycled.
    """
    base_c = cos.base if cos.base is not None else cos
    key = (id(base_c), cos.shape[0], cos.shape[1], n_heads, cos.dtype.str)
    hit = _ROPE_TILE_CACHE.get(key)
    if hit is not None:
        _ROPE_TILE_CACHE.move_to_end(key)
        return hit[1], hit[2], hit[3]
    half = cos.shape[1] // 2
    cos_t = np.tile(cos, (1, n_heads))
    sin_signed = np.concatenate([-sin[:, :half], sin[:, half:]], axis=1)
    sin_t = np.tile(sin_signed, (1, n_heads))
    sin_bt = -sin_t
    for arr in (cos_t, sin_t, sin_bt):
        arr.setflags(write=False)
    _ROPE_TILE_CACHE[key] = (base_c, cos_t, sin_t, sin_bt)
    if len(_ROPE_TILE_CACHE) > _ROPE_TILE_MAX:
        _ROPE_TILE_CACHE.popitem(last=False)
    return cos_t, sin_t, sin_bt


def _rope_flat(src: np.ndarray, cos_t: np.ndarray, sin_t: np.ndarray,
               out: np.ndarray, tmp: np.ndarray, n_heads: int,
               head_dim: int) -> None:
    """Rotate ``(B, T, D)``-layout heads with tiled tables into ``out``.

    ``src`` may be a strided slice (e.g. the Q rows of the packed QKV
    buffer); ``out`` and ``tmp`` are contiguous ``(B, T, D)`` buffers.  With
    ``sin_bt`` as the table and ``out is src`` permitted via ``tmp`` holding
    the cross terms first, the same three passes implement the backward.
    """
    b, t, d = out.shape
    half = head_dim // 2
    s5 = src.reshape(b, t, n_heads, 2, half)
    np.multiply(s5[..., ::-1, :], sin_t.reshape(t, n_heads, 2, half),
                out=tmp.reshape(b, t, n_heads, 2, half))
    np.multiply(src, cos_t, out=out)
    out += tmp


def fused_attn_block(x: Tensor, norm_w: Tensor, wq: Tensor, wk: Tensor,
                     wv: Tensor, wo: Tensor, n_heads: int, *,
                     rope_cos: Optional[np.ndarray] = None,
                     rope_sin: Optional[np.ndarray] = None,
                     causal: bool = True,
                     scale: Optional[float] = None,
                     eps: float = 1e-6) -> Tensor:
    """Whole pre-norm attention sublayer — ``x + O(attn(norm(x)))`` — as one
    autograd node.

    Fuses, in order: RMSNorm (its weight folded into the projection columns,
    so the normalised activations are never re-scaled), the packed QKV GEMM
    (score scaling folded into the stacked Q rows), RoPE applied in the flat
    ``(B, T, D)`` layout with tiled full-width tables, the blocked attention
    core, the output projection, and the residual add.  The V head view is a
    strided slice of the packed ``(B, T, 3D)`` buffer — BLAS consumes it
    directly — and the backward writes dQ/dK/dV straight into head-strided
    views of the packed gradient buffer, so no head-layout copies remain
    on either pass.  The softmax-backward row reduction uses the
    FlashAttention delta identity ``Σ_k dP·P = g·ctx`` (one einsum per
    sublayer instead of one per row block).  Per sublayer this replaces the
    ~3 node / 4 escape-buffer chain (norm → attention node → o-projection →
    residual add) with one node and one escaping output.

    Requires plain bias-free projection weights; callers with wrapped
    projections (e.g. LoRA) use the finer-grained kernels instead.
    """
    batch, seq, dim = x.shape
    if dim % n_heads != 0:
        raise ValueError(f"dim={dim} must be divisible by n_heads={n_heads}")
    head_dim = dim // n_heads
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    dt = x.data.dtype
    xd = x.data

    with _span("kernels.fused_attn_block", batch=batch, seq=seq,
               heads=n_heads):
        r, xh = _rms_fwd_pre(xd, eps)
        w_cat = _WS.take((3 * dim, dim), dt)
        np.concatenate([wq.data, wk.data, wv.data], axis=0, out=w_cat)
        w_cat[:dim] *= scale  # fold score scaling into the stacked Q rows
        w_cat *= norm_w.data  # fold the norm weight into every column
        qkv = _WS.take((batch, seq, 3 * dim), dt)
        np.matmul(xh.reshape(-1, dim), w_cat.T, out=qkv.reshape(-1, 3 * dim))
        qkv5 = qkv.reshape(batch, seq, 3, n_heads, head_dim)
        qs = qkv5[:, :, 0].transpose(0, 2, 1, 3)  # strided (B, H, T, Dh)
        kh = qkv5[:, :, 1].transpose(0, 2, 1, 3)  # views of the packed buf
        vh = qkv5[:, :, 2].transpose(0, 2, 1, 3)
        if rope_cos is not None:
            # The pre-rotation q/k values are dead once rotated (the weight
            # gradient reads xh, not qkv), so the rotation runs in place on
            # the packed buffer's flat q/k slices.
            cos_t, sin_t, sin_bt = _rope_tiled(rope_cos, rope_sin, n_heads)
            tmp = _WS.take((batch, seq, dim), dt)
            _rope_flat(qkv[..., :dim], cos_t, sin_t, qkv[..., :dim], tmp,
                       n_heads, head_dim)
            _rope_flat(qkv[..., dim:2 * dim], cos_t, sin_t,
                       qkv[..., dim:2 * dim], tmp, n_heads, head_dim)
            _WS.give(tmp)
        ctxm = _WS.take((batch, seq, dim), dt)
        _, probs_blocks = _attn_forward(
            qs, kh, vh, causal,
            out=ctxm.reshape(batch, seq, n_heads, head_dim).transpose(0, 2, 1, 3))
        y = np.matmul(ctxm.reshape(-1, dim), wo.data.T).reshape(batch, seq, dim)
        y += xd  # residual folded into the node

        children = (x, norm_w, wq, wk, wv, wo)
        requires = any(t.requires_grad for t in children)
        out = Tensor(y, requires_grad=requires,
                     _children=children if requires else (),
                     _op="fused_attn_block")
        # vs. the composed sublayer: probs upper triangle + RoPE temporaries
        # (as in fused_attention_qkv) plus the norm output, its gradient, the
        # context gradient and the residual-add output never escape.
        saved = 2 * _probs_bytes(probs_blocks) + 2 * qkv.nbytes + 4 * y.nbytes
        if rope_cos is not None:
            saved += 8 * batch * seq * dim * y.itemsize
        _count("fused_attn_block", saved)

    if not out.requires_grad:
        for p in probs_blocks:
            _WS.give(p)
        for buf in (qkv, xh, ctxm, w_cat):
            _WS.give(buf)
        return out

    def _backward() -> None:
        with _span("kernels.fused_attn_block.backward", batch=batch, seq=seq):
            g = out.grad
            g2 = g.reshape(-1, dim)
            dctxm = _WS.take((batch, seq, dim), dt)
            np.matmul(g2, wo.data, out=dctxm.reshape(-1, dim))
            # FlashAttention delta: the softmax-backward row dot
            # Σ_k dP_ik·P_ik collapses to g_i·ctx_i, computable per head
            # from the merged context before it is released.
            dots = np.einsum("bthd,bthd->bht",
                             dctxm.reshape(batch, seq, n_heads, head_dim),
                             ctxm.reshape(batch, seq, n_heads, head_dim))
            if wo.requires_grad:
                wo._accumulate_owned(g2.T @ ctxm.reshape(-1, dim))
            _WS.give(ctxm)
            gh = dctxm.reshape(batch, seq, n_heads,
                               head_dim).transpose(0, 2, 1, 3)
            dqkv = _WS.take((batch, seq, 3 * dim), dt)
            dqkv5 = dqkv.reshape(batch, seq, 3, n_heads, head_dim)
            _attn_backward(gh, qs, kh, vh, probs_blocks, causal, 1.0,
                           dots=dots,
                           out=(dqkv5[:, :, 0].transpose(0, 2, 1, 3),
                                dqkv5[:, :, 1].transpose(0, 2, 1, 3),
                                dqkv5[:, :, 2].transpose(0, 2, 1, 3)))
            _WS.give(dctxm)
            if rope_cos is not None:
                # Transposed rotation applied in place on the packed q/k
                # gradient slices (the cross terms are buffered first).
                tmp = _WS.take((batch, seq, dim), dt)
                _rope_flat(dqkv[..., :dim], cos_t, sin_bt, dqkv[..., :dim],
                           tmp, n_heads, head_dim)
                _rope_flat(dqkv[..., dim:2 * dim], cos_t, sin_bt,
                           dqkv[..., dim:2 * dim], tmp, n_heads, head_dim)
                _WS.give(tmp)
            _WS.give(qkv)
            gq2 = dqkv.reshape(-1, 3 * dim)
            dxh = _WS.take((batch, seq, dim), dt)
            np.matmul(gq2, w_cat, out=dxh.reshape(-1, dim))
            if (wq.requires_grad or wk.requires_grad or wv.requires_grad
                    or norm_w.requires_grad):
                dw_s = gq2.T @ xh.reshape(-1, dim)  # (3D, D), one GEMM
                if norm_w.requires_grad:
                    # Chain through the folded columns: with
                    # Ws[i,c] = s_i·nw_c·W[i,c], dnw_c = Σ_i dWs[i,c]·s_i·W[i,c].
                    dnw = np.einsum("rc,rc->c", dw_s[:dim], wq.data)
                    dnw *= scale
                    dnw += np.einsum("rc,rc->c", dw_s[dim:2 * dim], wk.data)
                    dnw += np.einsum("rc,rc->c", dw_s[2 * dim:], wv.data)
                    norm_w._accumulate_owned(dnw)
                dw_s *= norm_w.data  # un-fold the column norm weight
                dw_s[:dim] *= scale  # un-fold the Q-row scaling
                if wq.requires_grad:
                    wq._accumulate_owned(dw_s[:dim])
                if wk.requires_grad:
                    wk._accumulate_owned(dw_s[dim:2 * dim])
                if wv.requires_grad:
                    wv._accumulate_owned(dw_s[2 * dim:])
            _WS.give(dqkv)
            _WS.give(w_cat)
            dx = _rms_bwd_pre(dxh, xd, r)
            _WS.give(dxh)
            _WS.give(xh)
            if x.requires_grad:
                dx += g  # residual branch
                x._accumulate_owned(dx)

    out._backward = _backward
    return out


def fused_mlp_block(x: Tensor, norm_w: Tensor, w_gate: Tensor, w_up: Tensor,
                    w_down: Tensor, *, eps: float = 1e-6) -> Tensor:
    """Whole pre-norm MLP sublayer — ``x + down(silu(gate(n)) * up(n))`` with
    ``n = norm(x)`` — as one autograd node.

    Fuses the RMSNorm (its weight folded into the packed projection columns),
    the packed gate/up GEMM, the SwiGLU gate, the down projection and the
    residual add; every intermediate lives in a workspace buffer, so the
    sublayer's only escaping allocations are its output and the weight
    gradients.
    """
    batch, seq, dim = x.shape
    hidden = w_gate.shape[0]
    dt = x.data.dtype
    lead = (batch, seq)
    xd = x.data

    with _span("kernels.fused_mlp_block", shape=tuple(x.shape),
               hidden=hidden):
        r, xh = _rms_fwd_pre(xd, eps)
        w_cat = _WS.take((2 * hidden, dim), dt)
        np.concatenate([w_gate.data, w_up.data], axis=0, out=w_cat)
        w_cat *= norm_w.data  # fold the norm weight into every column
        gu = _WS.take(lead + (2 * hidden,), dt)
        np.matmul(xh.reshape(-1, dim), w_cat.T, out=gu.reshape(-1, 2 * hidden))
        gd = gu[..., :hidden]
        ud = gu[..., hidden:]
        sig = _WS.take(lead + (hidden,), dt)
        np.negative(gd, out=sig)
        np.exp(sig, out=sig)
        sig += 1.0
        np.reciprocal(sig, out=sig)  # sigmoid(gate)
        silu_g = _WS.take(lead + (hidden,), dt)
        np.multiply(gd, sig, out=silu_g)
        hmid = _WS.take(lead + (hidden,), dt)
        np.multiply(silu_g, ud, out=hmid)
        # Precompute the gate-gradient factor dfac = up·silu'(gate) =
        # up·(sig + silu(gate)·(1 − sig)) while up/sig are still hot: the
        # backward's whole gate chain collapses to one multiply by dh, and
        # neither the packed gate/up buffer nor sig needs to survive the
        # forward.
        dfac = _WS.take(lead + (hidden,), dt)
        np.multiply(silu_g, sig, out=dfac)
        np.subtract(silu_g, dfac, out=dfac)
        dfac += sig
        dfac *= ud
        _WS.give(sig)
        _WS.give(gu)
        y = np.matmul(hmid.reshape(-1, hidden),
                      w_down.data.T).reshape(batch, seq, dim)
        y += xd  # residual folded into the node

        children = (x, norm_w, w_gate, w_up, w_down)
        requires = any(t.requires_grad for t in children)
        out = Tensor(y, requires_grad=requires,
                     _children=children if requires else (),
                     _op="fused_mlp_block")
        # vs. the composed sublayer: gate/up/silu/mul outputs and their
        # gradients plus the norm output/grad and residual-add output.
        _count("fused_mlp_block", 2 * gu.nbytes + 4 * gd.nbytes + 4 * y.nbytes)

    if not out.requires_grad:
        for buf in (dfac, silu_g, hmid, xh, w_cat):
            _WS.give(buf)
        return out

    def _backward() -> None:
        with _span("kernels.fused_mlp_block.backward", shape=tuple(x.shape)):
            g = out.grad
            g2 = g.reshape(-1, dim)
            dh = _WS.take(lead + (hidden,), dt)
            np.matmul(g2, w_down.data, out=dh.reshape(-1, hidden))
            if w_down.requires_grad:
                w_down._accumulate_owned(g2.T @ hmid.reshape(-1, hidden))
            _WS.give(hmid)
            # dgate = dh·dfac (factor precomputed in the forward) and
            # dup = dh·silu(gate), each written straight into its half of
            # the packed gradient buffer.
            dgu = _WS.take(lead + (2 * hidden,), dt)
            np.multiply(dh, dfac, out=dgu[..., :hidden])
            np.multiply(dh, silu_g, out=dgu[..., hidden:])
            for buf in (dh, dfac, silu_g):
                _WS.give(buf)
            gq2 = dgu.reshape(-1, 2 * hidden)
            dxh = _WS.take(lead + (dim,), dt)
            np.matmul(gq2, w_cat, out=dxh.reshape(-1, dim))
            if (w_gate.requires_grad or w_up.requires_grad
                    or norm_w.requires_grad):
                dw_s = gq2.T @ xh.reshape(-1, dim)  # (2H, D), one GEMM
                if norm_w.requires_grad:
                    dnw = np.einsum("rc,rc->c", dw_s[:hidden], w_gate.data)
                    dnw += np.einsum("rc,rc->c", dw_s[hidden:], w_up.data)
                    norm_w._accumulate_owned(dnw)
                dw_s *= norm_w.data  # un-fold the column norm weight
                if w_gate.requires_grad:
                    w_gate._accumulate_owned(dw_s[:hidden])
                if w_up.requires_grad:
                    w_up._accumulate_owned(dw_s[hidden:])
            _WS.give(dgu)
            _WS.give(w_cat)
            dx = _rms_bwd_pre(dxh, xd, r)
            _WS.give(dxh)
            _WS.give(xh)
            if x.requires_grad:
                dx += g  # residual branch
                x._accumulate_owned(dx)

    out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# fused cross-entropy
# ---------------------------------------------------------------------------
def fused_cross_entropy(logits: Tensor, targets: np.ndarray,
                        ignore_index: Optional[int] = None) -> Tensor:
    """Mean token cross-entropy as one autograd node with O(N) saved state.

    Identical semantics to the composed :func:`repro.nn.functional.cross_entropy`
    (including ``ignore_index`` masking and the all-masked-batch guard), but
    the forward retains only the per-row ``max + logsumexp`` vector: the
    backward rebuilds ``softmax(logits) − one_hot(targets)`` directly from
    the logits data, scaled by ``mask / count``, so the full ``(N, V)``
    log-probability matrix never outlives the forward.
    """
    targets = np.asarray(targets, dtype=np.int64)
    vocab = logits.shape[-1]
    with _span("kernels.fused_cross_entropy", rows=int(targets.size),
               vocab=vocab):
        flat_logits = logits.data.reshape(-1, vocab)
        flat_targets = targets.reshape(-1)
        if ignore_index is not None:
            mask = flat_targets != ignore_index
            safe_targets = np.where(mask, flat_targets, 0)
            count = max(int(mask.sum()), 1)
        else:
            mask = None
            safe_targets = flat_targets
            count = len(flat_targets)
        rows = np.arange(len(flat_targets))

        m = flat_logits.max(axis=-1)
        shifted = _WS.take(flat_logits.shape, flat_logits.dtype)
        np.subtract(flat_logits, m[:, None], out=shifted)
        np.exp(shifted, out=shifted)
        # lse_full[i] = max_i + log(sum_j exp(logits_ij - max_i)); the only
        # O(N) state the backward needs.
        lse_full = m + np.log(shifted.sum(axis=-1))
        _WS.give(shifted)
        picked = flat_logits[rows, safe_targets] - lse_full
        if mask is not None:
            loss_val = -(picked * mask).sum() / count
        else:
            loss_val = -picked.sum() / count

        out = Tensor(loss_val, requires_grad=logits.requires_grad,
                     _children=(logits,) if logits.requires_grad else (),
                     _op="fused_cross_entropy")
        _count("fused_cross_entropy", flat_logits.nbytes)

    if not out.requires_grad:
        return out

    def _backward() -> None:
        with _span("kernels.fused_cross_entropy.backward",
                   rows=len(flat_targets)):
            probs = logits.data.reshape(-1, vocab) - lse_full[:, None]
            np.exp(probs, out=probs)
            probs[rows, safe_targets] -= 1.0
            if mask is not None:
                probs *= mask[:, None]
            probs *= float(out.grad) / count
            logits._accumulate_owned(probs.reshape(logits.shape))

    out._backward = _backward
    return out


def fused_lm_loss(x: Tensor, norm_w: Tensor, w_head: Tensor,
                  targets: np.ndarray,
                  ignore_index: Optional[int] = None,
                  eps: float = 1e-6) -> Tensor:
    """Final RMSNorm + LM head + mean cross-entropy as one autograd node.

    Semantically ``fused_cross_entropy(linear(rms_norm(x)), targets)``, but
    the ``(B, T, V)`` logits live in a workspace buffer instead of escaping
    into the graph, and their gradient is rebuilt in the same buffer — the
    two largest arrays of a training step never hit the allocator.  Used by
    :meth:`repro.nn.transformer.TransformerLM.loss` when the head is a plain
    bias-free projection.
    """
    targets = np.asarray(targets, dtype=np.int64)
    dim = x.shape[-1]
    vocab = w_head.shape[0]
    dt = x.data.dtype
    xd = x.data
    with _span("kernels.fused_lm_loss", rows=int(targets.size), vocab=vocab):
        r, xh = _rms_fwd_pre(xd, eps)
        ws_head = _WS.take((vocab, dim), dt)
        np.multiply(w_head.data, norm_w.data, out=ws_head)  # fold norm weight
        logits = _WS.take((int(np.prod(x.shape[:-1])), vocab), dt)
        np.matmul(xh.reshape(-1, dim), ws_head.T, out=logits)
        flat_targets = targets.reshape(-1)
        if ignore_index is not None:
            mask = flat_targets != ignore_index
            safe_targets = np.where(mask, flat_targets, 0)
            count = max(int(mask.sum()), 1)
        else:
            mask = None
            safe_targets = flat_targets
            count = len(flat_targets)
        rows = np.arange(len(flat_targets))
        # Self-verifying fast path: exponentiate unshifted and check the
        # resulting logsumexp.  Overflow (inf), total underflow (log 0) or
        # a NaN row all yield a non-finite entry, which triggers the
        # classic shift-by-max recomputation; typical training logits stay
        # far inside float range, so the per-row max and subtract passes
        # are skipped.
        shifted = _WS.take(logits.shape, dt)
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            np.exp(logits, out=shifted)
            lse_full = np.log(shifted.sum(axis=-1))
        if not np.isfinite(lse_full).all():
            m = logits.max(axis=-1)
            np.subtract(logits, m[:, None], out=shifted)
            np.exp(shifted, out=shifted)
            lse_full = np.log(shifted.sum(axis=-1))
            lse_full += m
        _WS.give(shifted)
        picked = logits[rows, safe_targets] - lse_full
        if mask is not None:
            loss_val = -(picked * mask).sum() / count
        else:
            loss_val = -picked.sum() / count

        children = (x, norm_w, w_head)
        requires = any(t.requires_grad for t in children)
        out = Tensor(loss_val, requires_grad=requires,
                     _children=children if requires else (),
                     _op="fused_lm_loss")
        # The logits and their gradient (the two largest per-step buffers),
        # the norm output and its gradient all stay out of the graph.
        _count("fused_lm_loss", 2 * logits.nbytes + 2 * xh.nbytes)

    if not out.requires_grad:
        _WS.give(logits)
        _WS.give(ws_head)
        _WS.give(xh)
        return out

    def _backward() -> None:
        with _span("kernels.fused_lm_loss.backward",
                   rows=len(flat_targets)):
            # dlogits = (softmax − one_hot) · mask · g / count, rebuilt in
            # the saved logits buffer itself.
            np.subtract(logits, lse_full[:, None], out=logits)
            np.exp(logits, out=logits)
            logits[rows, safe_targets] -= 1.0
            if mask is not None:
                np.multiply(logits, mask[:, None], out=logits)
            np.multiply(logits, float(out.grad) / count, out=logits)
            if w_head.requires_grad or norm_w.requires_grad:
                dw_s = logits.T @ xh.reshape(-1, dim)  # grad of folded head
                if norm_w.requires_grad:
                    norm_w._accumulate_owned(
                        np.einsum("rc,rc->c", dw_s, w_head.data))
                dw_s *= norm_w.data  # un-fold the column norm weight
                if w_head.requires_grad:
                    w_head._accumulate_owned(dw_s)
            dxh = _WS.take(xd.shape, dt)
            np.matmul(logits, ws_head, out=dxh.reshape(-1, dim))
            _WS.give(logits)
            _WS.give(ws_head)
            dx = _rms_bwd_pre(dxh, xd, r)
            _WS.give(dxh)
            _WS.give(xh)
            if x.requires_grad:
                x._accumulate_owned(dx)

    out._backward = _backward
    return out
