"""Optimizers and learning-rate schedules for training the substrate models."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Per-parameter scratch reused every step — the update itself
        # allocates nothing.
        self._s1 = [np.empty_like(p.data) for p in self.params]
        self._s2 = [np.empty_like(p.data) for p in self.params]

    def _update(self, p: Parameter, m: np.ndarray, v: np.ndarray,
                s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
        # Operation order (and therefore rounding) matches the textbook form
        # lr·m̂ / (√v̂ + ε) exactly.
        g = p.grad
        m *= self.beta1
        m += (1 - self.beta1) * g
        v *= self.beta2
        np.multiply(g, g, out=s2)
        s2 *= 1 - self.beta2
        v += s2
        np.divide(v, 1 - self.beta2 ** self.t, out=s1)
        np.sqrt(s1, out=s1)
        s1 += self.eps
        np.divide(m, 1 - self.beta1 ** self.t, out=s2)
        s2 *= self.lr
        np.divide(s2, s1, out=s2)
        return s2

    def step(self) -> None:
        self.t += 1
        for p, m, v, s1, s2 in zip(self.params, self._m, self._v,
                                   self._s1, self._s2):
            if p.grad is None:
                continue
            p.data -= self._update(p, m, v, s1, s2)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.01) -> None:
        super().__init__(params, lr, betas, eps)
        self.weight_decay = weight_decay

    def step(self) -> None:
        self.t += 1
        for p, m, v, s1, s2 in zip(self.params, self._m, self._v,
                                   self._s1, self._s2):
            if p.grad is None:
                continue
            p.data -= self.lr * self.weight_decay * p.data
            p.data -= self._update(p, m, v, s1, s2)


class CosineSchedule:
    """Cosine decay from ``base_lr`` to ``min_lr`` after a linear warmup."""

    def __init__(self, base_lr: float, total_steps: int, warmup_steps: int = 0,
                 min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps >= total_steps:
            raise ValueError("warmup_steps must be < total_steps")
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        """Learning rate at 0-indexed optimisation step ``step``."""
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
        progress = min(max(progress, 0.0), 1.0)
        cos = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cos

    def apply(self, optimizer: Optimizer, step: int) -> float:
        """Set the optimizer's lr for ``step`` and return it."""
        lr = self.lr_at(step)
        optimizer.lr = lr
        return lr


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = math.sqrt(sum(
        float(np.dot(g, g)) for p in params
        for g in (p.grad.reshape(-1),)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
