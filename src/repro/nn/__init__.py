"""From-scratch neural substrate: autograd, transformer LM, LoRA, training.

This package replaces the PyTorch/HuggingFace stack the paper's experiments
assume.  See DESIGN.md §1 for the substitution rationale.
"""

from .tensor import Tensor, no_grad, cat, stack, where
from .module import Module, ModuleList, Parameter
from .layers import Dropout, Embedding, FeedForward, LayerNorm, Linear, RMSNorm
from .attention import MultiHeadSelfAttention, RopeTable, causal_mask
from .kernels import (attention_nograd, fused_attention, fused_attention_qkv,
                      fused_attn_block, fused_cross_entropy, fused_gateup,
                      fused_linear, fused_lm_loss, fused_mlp_block,
                      fused_rms_norm, fused_swiglu, kernel_observability,
                      kernel_workspace, set_kernel_observability)
from .transformer import TransformerConfig, TransformerLM, preset_config
from .tokenizer import BPETokenizer, WordTokenizer
from .optim import SGD, Adam, AdamW, CosineSchedule, clip_grad_norm
from .trainer import IGNORE_INDEX, TrainConfig, Trainer, TrainResult, pad_batch
from .generation import continuation_logprob, generate, generate_text, sequence_logprob
from .sampling import filter_top_k, filter_top_p, sample_next, softmax
from .lora import LoRALinear, apply_lora, lora_parameters, merge_lora
from .checkpoint import (checkpoint_exists, load_model, load_state_dict,
                         save_model, save_state_dict)
from .infer import InferenceEngine, generate_text_fast

__all__ = [
    "Tensor", "no_grad", "cat", "stack", "where",
    "Module", "ModuleList", "Parameter",
    "Dropout", "Embedding", "FeedForward", "LayerNorm", "Linear", "RMSNorm",
    "MultiHeadSelfAttention", "RopeTable", "causal_mask",
    "attention_nograd", "fused_attention", "fused_attention_qkv",
    "fused_attn_block", "fused_cross_entropy", "fused_gateup", "fused_linear",
    "fused_lm_loss", "fused_mlp_block", "fused_rms_norm", "fused_swiglu",
    "kernel_observability", "kernel_workspace", "set_kernel_observability",
    "TransformerConfig", "TransformerLM", "preset_config",
    "BPETokenizer", "WordTokenizer",
    "SGD", "Adam", "AdamW", "CosineSchedule", "clip_grad_norm",
    "IGNORE_INDEX", "TrainConfig", "Trainer", "TrainResult", "pad_batch",
    "continuation_logprob", "generate", "generate_text", "sequence_logprob",
    "filter_top_k", "filter_top_p", "sample_next", "softmax",
    "LoRALinear", "apply_lora", "lora_parameters", "merge_lora",
    "checkpoint_exists", "load_model", "load_state_dict", "save_model", "save_state_dict",
    "InferenceEngine", "generate_text_fast",
]
