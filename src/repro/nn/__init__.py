"""From-scratch neural substrate: autograd, transformer LM, LoRA, training.

This package replaces the PyTorch/HuggingFace stack the paper's experiments
assume.  See DESIGN.md §1 for the substitution rationale.
"""

from .tensor import Tensor, no_grad, cat, stack, where
from .module import Module, ModuleList, Parameter
from .layers import Dropout, Embedding, FeedForward, LayerNorm, Linear, RMSNorm
from .attention import MultiHeadSelfAttention, causal_mask
from .transformer import TransformerConfig, TransformerLM, preset_config
from .tokenizer import BPETokenizer, WordTokenizer
from .optim import SGD, Adam, AdamW, CosineSchedule, clip_grad_norm
from .trainer import IGNORE_INDEX, TrainConfig, Trainer, TrainResult, pad_batch
from .generation import continuation_logprob, generate, generate_text, sequence_logprob
from .sampling import filter_top_k, filter_top_p, sample_next, softmax
from .lora import LoRALinear, apply_lora, lora_parameters, merge_lora
from .checkpoint import (checkpoint_exists, load_model, load_state_dict,
                         save_model, save_state_dict)
from .infer import InferenceEngine, generate_text_fast

__all__ = [
    "Tensor", "no_grad", "cat", "stack", "where",
    "Module", "ModuleList", "Parameter",
    "Dropout", "Embedding", "FeedForward", "LayerNorm", "Linear", "RMSNorm",
    "MultiHeadSelfAttention", "causal_mask",
    "TransformerConfig", "TransformerLM", "preset_config",
    "BPETokenizer", "WordTokenizer",
    "SGD", "Adam", "AdamW", "CosineSchedule", "clip_grad_norm",
    "IGNORE_INDEX", "TrainConfig", "Trainer", "TrainResult", "pad_batch",
    "continuation_logprob", "generate", "generate_text", "sequence_logprob",
    "filter_top_k", "filter_top_p", "sample_next", "softmax",
    "LoRALinear", "apply_lora", "lora_parameters", "merge_lora",
    "checkpoint_exists", "load_model", "load_state_dict", "save_model", "save_state_dict",
    "InferenceEngine", "generate_text_fast",
]
