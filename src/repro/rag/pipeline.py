"""The full retrieve → fuse → rerank RAG pipeline.

Matches the three-stage shape of the paper's Section IV-B setup: a dense
embedding retriever and BM25 run in parallel, their candidate lists are
fused with reciprocal-rank fusion, and a reranker picks the final context.

:class:`RagAnswerService` closes the loop from retrieval to generation:
it grounds each question with the pipeline and routes the resulting
prompts through a batched :class:`~repro.serve.InProcessServer`, so a
burst of questions decodes concurrently and their shared instruction
block hits the server's prefix cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import Observability
from .bm25 import BM25Index
from .embedder import DenseRetriever, HashedEmbedder
from .reranker import OverlapReranker


def reciprocal_rank_fusion(rankings: Sequence[Sequence[int]], k: float = 60.0) -> List[int]:
    """Fuse ranked doc-id lists with RRF; returns doc ids best-first."""
    if not rankings:
        raise ValueError("need at least one ranking to fuse")
    scores: Dict[int, float] = {}
    for ranking in rankings:
        for rank, doc_id in enumerate(ranking):
            scores[doc_id] = scores.get(doc_id, 0.0) + 1.0 / (k + rank + 1)
    return sorted(scores, key=lambda d: (-scores[d], d))


@dataclass(frozen=True)
class RetrievalResult:
    """Final retrieval output: chosen context plus diagnostics."""

    context: str
    doc_ids: Tuple[int, ...]
    candidates: Tuple[int, ...]


class RagPipeline:
    """Dense + BM25 retrieval with RRF fusion and overlap reranking.

    Parameters
    ----------
    corpus:
        The documentation paragraphs to retrieve from.
    candidate_k:
        Candidates taken from each first-stage retriever before fusion.
    final_k:
        Number of paragraphs concatenated into the returned context.
    obs:
        Shared :class:`~repro.obs.Observability`; each retrieval records a
        ``rag.retrieve`` span with per-stage children (dense / bm25 / fuse /
        rerank) plus a query counter.  Private when omitted.
    workers:
        >1 builds both indices in parallel: corpus embeddings fan out
        across a :class:`~repro.parallel.WorkerPool` and BM25 term
        statistics are sharded per document and merged.  Both indices are
        bit-identical to a serial build.
    """

    def __init__(self, corpus: Sequence[str], candidate_k: int = 5,
                 final_k: int = 1, embed_dim: int = 256,
                 obs: Optional[Observability] = None,
                 workers: Optional[int] = None) -> None:
        if final_k > candidate_k:
            raise ValueError("final_k cannot exceed candidate_k")
        self.corpus = list(corpus)
        self.candidate_k = candidate_k
        self.final_k = final_k
        self.obs = obs if obs is not None else Observability()
        with self.obs.span("rag.index_build", docs=len(self.corpus)):
            self.dense = DenseRetriever(self.corpus, HashedEmbedder(embed_dim),
                                        workers=workers)
            self.bm25 = BM25Index(self.corpus, workers=workers)
        self.reranker = OverlapReranker(self.corpus)

    def retrieve_many(self, queries: Sequence[str]) -> List[RetrievalResult]:
        """Retrieve contexts for a batch of queries (order-preserving)."""
        return [self.retrieve(query) for query in queries]

    def retrieve(self, query: str) -> RetrievalResult:
        """Retrieve the context for ``query`` through all three stages."""
        with self.obs.span("rag.retrieve"):
            with self.obs.span("rag.dense"):
                dense_ids = [i for i, _ in
                             self.dense.search(query, self.candidate_k)]
            with self.obs.span("rag.bm25"):
                bm25_ids = [i for i, _ in
                            self.bm25.search(query, self.candidate_k)]
            with self.obs.span("rag.fuse"):
                fused = reciprocal_rank_fusion(
                    [dense_ids, bm25_ids])[: self.candidate_k]
            with self.obs.span("rag.rerank"):
                reranked = self.reranker.rerank(
                    query, [(i, self.corpus[i]) for i in fused],
                    top_k=self.final_k)
        chosen = tuple(i for i, _ in reranked)
        context = " ".join(self.corpus[i] for i in chosen)
        self.obs.registry.counter("rag.queries").inc()
        return RetrievalResult(context, chosen, tuple(fused))

    def recall_at_k(self, queries: Sequence[str], golden_ids: Sequence[int],
                    k: int = None) -> float:
        """Fraction of queries whose golden paragraph survives to the context."""
        if len(queries) != len(golden_ids):
            raise ValueError("queries and golden_ids must align")
        if not queries:
            raise ValueError("empty query set")
        hits = 0
        for query, golden in zip(queries, golden_ids):
            result = self.retrieve(query)
            pool = result.doc_ids if k is None else result.candidates[:k]
            if golden in pool:
                hits += 1
        return hits / len(queries)


class RagAnswerService:
    """Grounded question answering through the batched serving subsystem.

    Parameters
    ----------
    pipeline:
        The retrieval pipeline supplying grounding contexts.
    server:
        An :class:`~repro.serve.InProcessServer` with a tokenizer (needed to
        encode the rendered prompts).
    instructions:
        Instruction texts appended to every prompt (the shared block that
        makes a question burst prefix-cache friendly).
    max_new_tokens:
        Decode budget per answer.
    obs:
        Shared :class:`~repro.obs.Observability`; defaults to the
        pipeline's handle so retrieval and answer spans land in one trace.
    """

    def __init__(self, pipeline: RagPipeline, server,
                 instructions: Sequence[str] = (),
                 max_new_tokens: int = 56,
                 obs: Optional[Observability] = None) -> None:
        if server.tokenizer is None:
            raise ValueError("RagAnswerService requires a server with a tokenizer")
        self.pipeline = pipeline
        self.server = server
        self.instructions = tuple(instructions)
        self.max_new_tokens = max_new_tokens
        self.obs = obs if obs is not None else pipeline.obs

    def _prompt(self, question: str, context: str) -> str:
        from ..data.prompting import format_prompt

        return format_prompt(question, context=context,
                             instructions=list(self.instructions))

    def answer(self, question: str) -> str:
        """Retrieve context for one question and generate its answer."""
        from ..serve import SamplingParams

        with self.obs.span("rag.answer"):
            context = self.pipeline.retrieve(question).context
            return self.server.complete_text(
                self._prompt(question, context),
                params=SamplingParams(max_new_tokens=self.max_new_tokens))

    def answer_many(self, questions: Sequence[str]) -> List[str]:
        """Answer a burst of questions through one batched decode run.

        All prompts are submitted before the scheduler runs, so they decode
        concurrently; answers are returned in question order.
        """
        from ..serve import SamplingParams

        with self.obs.span("rag.answer_many", questions=len(questions)):
            results = self.pipeline.retrieve_many(questions)
            params = SamplingParams(max_new_tokens=self.max_new_tokens)
            ids = [self.server.submit_text(self._prompt(q, r.context),
                                           params=params)
                   for q, r in zip(questions, results)]
            self.server.run_until_idle()
            return [(self.server.result(rid).text or "") for rid in ids]
