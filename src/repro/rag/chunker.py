"""Document chunking for retrieval.

Splits documentation paragraphs into overlapping word-window chunks, the
usual preprocessing step before indexing; used when callers want a finer
retrieval granularity than whole paragraphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Chunk:
    """One chunk with provenance back to its source document."""

    text: str
    doc_id: int
    start: int  # word offset within the source document


def chunk_document(text: str, doc_id: int, window: int = 40,
                   overlap: int = 10) -> List[Chunk]:
    """Split one document into overlapping word windows.

    The final window is always emitted even if shorter, so no words are
    dropped; ``overlap`` must be smaller than ``window``.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if not 0 <= overlap < window:
        raise ValueError(f"overlap must be in [0, window), got {overlap}")
    words = text.split()
    if not words:
        return []
    chunks: List[Chunk] = []
    step = window - overlap
    start = 0
    while True:
        piece = words[start: start + window]
        chunks.append(Chunk(" ".join(piece), doc_id, start))
        if start + window >= len(words):
            break
        start += step
    return chunks


def chunk_corpus(documents: Sequence[str], window: int = 40,
                 overlap: int = 10) -> List[Chunk]:
    """Chunk every document in a corpus, preserving provenance."""
    chunks: List[Chunk] = []
    for doc_id, text in enumerate(documents):
        chunks.extend(chunk_document(text, doc_id, window, overlap))
    return chunks
