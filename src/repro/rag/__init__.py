"""Retrieval substrate: BM25 + dense retrieval + reranking (DESIGN.md §1)."""

from .bm25 import BM25Index
from .embedder import DenseRetriever, HashedEmbedder
from .reranker import OverlapReranker
from .chunker import Chunk, chunk_corpus, chunk_document
from .pipeline import (RagAnswerService, RagPipeline, RetrievalResult,
                       reciprocal_rank_fusion)

__all__ = [
    "BM25Index", "DenseRetriever", "HashedEmbedder", "OverlapReranker",
    "Chunk", "chunk_corpus", "chunk_document",
    "RagAnswerService", "RagPipeline", "RetrievalResult",
    "reciprocal_rank_fusion",
]
