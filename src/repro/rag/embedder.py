"""Hashed n-gram text embeddings and a dense retriever.

Stands in for the *bge-large-en-v1.5* embedding model of the paper's RAG
pipeline: a deterministic feature-hashing embedder (unigrams + bigrams,
TF-weighted, L2-normalised) with cosine-similarity search.  No training or
weights required, which keeps the pipeline fully offline.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def _hash_feature(feature: str, dim: int) -> Tuple[int, float]:
    """Map a feature string to (bucket, ±1 sign) via a stable hash."""
    digest = hashlib.md5(feature.encode()).digest()
    bucket = int.from_bytes(digest[:4], "little") % dim
    sign = 1.0 if digest[4] % 2 == 0 else -1.0
    return bucket, sign


def _embed_text(text: str) -> np.ndarray:
    """Worker-side embedding of one text (embedder fork-inherited)."""
    from ..parallel import get_task_context

    return get_task_context()["rag_embedder"].embed(text)


class HashedEmbedder:
    """Feature-hashing sentence embedder over word unigrams and bigrams.

    Each distinct feature string is hashed once and its ``(bucket, sign)``
    pair memoised, so repeated vocabulary across a corpus costs one md5
    digest total rather than one per occurrence.
    """

    def __init__(self, dim: int = 256) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._feature_cache: Dict[str, Tuple[int, float]] = {}

    def _feature(self, feature: str) -> Tuple[int, float]:
        hit = self._feature_cache.get(feature)
        if hit is None:
            hit = self._feature_cache[feature] = _hash_feature(feature, self.dim)
        return hit

    @staticmethod
    def _features(text: str) -> List[str]:
        tokens = text.split()
        features = list(tokens)
        features.extend(f"{a}_{b}" for a, b in zip(tokens, tokens[1:]))
        return features

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into an L2-normalised vector (zeros if empty)."""
        vec = np.zeros(self.dim, dtype=np.float64)
        features = self._features(text)
        if features:
            pairs = [self._feature(f) for f in features]
            buckets = np.fromiter((b for b, _ in pairs), dtype=np.intp,
                                  count=len(pairs))
            signs = np.fromiter((s for _, s in pairs), dtype=np.float64,
                                count=len(pairs))
            # ±1 accumulation is exact in float64, so the scatter-add is
            # bit-identical to the scalar loop regardless of ordering.
            np.add.at(vec, buckets, signs)
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def embed_batch(self, texts: Sequence[str],
                    workers: Optional[int] = None) -> np.ndarray:
        """Embed many texts into a ``(n, dim)`` matrix.

        ``workers`` > 1 embeds texts in a
        :class:`~repro.parallel.WorkerPool` (rows are stacked back in text
        order, bit-identical to the serial path).  Serially, all texts are
        accumulated through one vectorised scatter-add.
        """
        from ..parallel import WorkerPool, effective_workers, task_context

        texts = list(texts)
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        workers = effective_workers(workers)
        if workers > 1:
            with task_context(rag_embedder=self):
                with WorkerPool(workers) as pool:
                    rows = pool.map_chunked(_embed_text, texts)
            return np.stack(rows)
        rows_idx: List[int] = []
        buckets: List[int] = []
        signs: List[float] = []
        for row, text in enumerate(texts):
            for feature in self._features(text):
                bucket, sign = self._feature(feature)
                rows_idx.append(row)
                buckets.append(bucket)
                signs.append(sign)
        mat = np.zeros((len(texts), self.dim), dtype=np.float64)
        if rows_idx:
            np.add.at(mat,
                      (np.asarray(rows_idx, dtype=np.intp),
                       np.asarray(buckets, dtype=np.intp)),
                      np.asarray(signs, dtype=np.float64))
        # Sums of squares of small exact integers are exact, so the row
        # norms (and hence the normalised rows) match per-text embed().
        norms = np.linalg.norm(mat, axis=1)
        return mat / np.where(norms > 0, norms, 1.0)[:, None]


class DenseRetriever:
    """Cosine-similarity retrieval over pre-embedded documents."""

    def __init__(self, documents: Sequence[str],
                 embedder: HashedEmbedder = None,
                 workers: Optional[int] = None) -> None:
        if not documents:
            raise ValueError("cannot index an empty corpus")
        self.documents = list(documents)
        self.embedder = embedder or HashedEmbedder()
        self._matrix = self.embedder.embed_batch(self.documents,
                                                 workers=workers)

    def search(self, query: str, top_k: int = 5) -> List[Tuple[int, float]]:
        """Top-``top_k`` ``(doc_id, cosine)`` pairs, best first."""
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        q = self.embedder.embed(query)
        sims = self._matrix @ q
        order = np.lexsort((np.arange(len(sims)), -sims))
        return [(int(i), float(sims[i])) for i in order[:top_k]]
