"""Hashed n-gram text embeddings and a dense retriever.

Stands in for the *bge-large-en-v1.5* embedding model of the paper's RAG
pipeline: a deterministic feature-hashing embedder (unigrams + bigrams,
TF-weighted, L2-normalised) with cosine-similarity search.  No training or
weights required, which keeps the pipeline fully offline.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

import numpy as np


def _hash_feature(feature: str, dim: int) -> Tuple[int, float]:
    """Map a feature string to (bucket, ±1 sign) via a stable hash."""
    digest = hashlib.md5(feature.encode()).digest()
    bucket = int.from_bytes(digest[:4], "little") % dim
    sign = 1.0 if digest[4] % 2 == 0 else -1.0
    return bucket, sign


class HashedEmbedder:
    """Feature-hashing sentence embedder over word unigrams and bigrams."""

    def __init__(self, dim: int = 256) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into an L2-normalised vector (zeros if empty)."""
        vec = np.zeros(self.dim, dtype=np.float64)
        tokens = text.split()
        features = list(tokens)
        features.extend(f"{a}_{b}" for a, b in zip(tokens, tokens[1:]))
        for feature in features:
            bucket, sign = _hash_feature(feature, self.dim)
            vec[bucket] += sign
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts into a ``(n, dim)`` matrix."""
        return np.stack([self.embed(t) for t in texts]) if texts else np.zeros((0, self.dim))


class DenseRetriever:
    """Cosine-similarity retrieval over pre-embedded documents."""

    def __init__(self, documents: Sequence[str], embedder: HashedEmbedder = None) -> None:
        if not documents:
            raise ValueError("cannot index an empty corpus")
        self.documents = list(documents)
        self.embedder = embedder or HashedEmbedder()
        self._matrix = self.embedder.embed_batch(self.documents)

    def search(self, query: str, top_k: int = 5) -> List[Tuple[int, float]]:
        """Top-``top_k`` ``(doc_id, cosine)`` pairs, best first."""
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        q = self.embedder.embed(query)
        sims = self._matrix @ q
        order = np.lexsort((np.arange(len(sims)), -sims))
        return [(int(i), float(sims[i])) for i in order[:top_k]]
