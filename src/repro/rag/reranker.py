"""Cross-attention-style reranking (the *bge-reranker-large* substitute).

Scores each candidate document jointly with the query using token-overlap
statistics that approximate what a cross-encoder learns to do: weigh exact
matches by their informativeness (inverse frequency in the pool) and reward
consecutive-phrase matches.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Sequence, Tuple


class OverlapReranker:
    """Rerank (query, document) pairs by IDF-weighted overlap + bigram bonus."""

    def __init__(self, pool: Sequence[str], bigram_weight: float = 0.5) -> None:
        if not pool:
            raise ValueError("reranker needs a document pool for idf statistics")
        self.bigram_weight = bigram_weight
        df: Counter = Counter()
        for doc in pool:
            df.update(set(doc.split()))
        n = len(pool)
        self._idf = {t: math.log(1 + n / d) for t, d in df.items()}
        self._default_idf = math.log(1 + n)

    def score(self, query: str, document: str) -> float:
        """Joint relevance score of one pair."""
        q_tokens = query.split()
        d_tokens = document.split()
        d_set = set(d_tokens)
        score = sum(self._idf.get(t, self._default_idf)
                    for t in set(q_tokens) if t in d_set)
        d_bigrams = set(zip(d_tokens, d_tokens[1:]))
        for pair in zip(q_tokens, q_tokens[1:]):
            if pair in d_bigrams:
                score += self.bigram_weight
        return score

    def rerank(self, query: str, candidates: Sequence[Tuple[int, str]],
               top_k: int = 1) -> List[Tuple[int, float]]:
        """Order candidate ``(doc_id, text)`` pairs; return the best ``top_k``."""
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        scored = [(doc_id, self.score(query, text)) for doc_id, text in candidates]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:top_k]
