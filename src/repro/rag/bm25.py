"""BM25 lexical retrieval, from scratch (Okapi BM25).

Plays the role of the paper's BM25 stage in its three-part RAG pipeline
(Section IV-B: bge embeddings + BM25 + bge reranker).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple


def _bm25_doc(doc: str) -> Tuple[Counter, int]:
    """Worker-side term stats for one document: ``(term freqs, length)``."""
    tokens = BM25Index._tokenize(doc)
    return Counter(tokens), len(tokens)


class BM25Index:
    """An in-memory BM25 index over whitespace-tokenised documents.

    Parameters
    ----------
    documents:
        The corpus; document ids are list indices.
    k1, b:
        Standard BM25 saturation and length-normalisation parameters.
    workers:
        >1 computes per-document term statistics in a
        :class:`~repro.parallel.WorkerPool` and merges the shards in
        document order (document-frequency ``Counter`` sums are
        commutative, so the index is bit-identical to a serial build).
    """

    def __init__(self, documents: Sequence[str], k1: float = 1.5, b: float = 0.75,
                 workers: Optional[int] = None) -> None:
        if not documents:
            raise ValueError("cannot index an empty corpus")
        if k1 < 0 or not 0 <= b <= 1:
            raise ValueError(f"invalid BM25 parameters k1={k1}, b={b}")
        self.documents = list(documents)
        self.k1 = k1
        self.b = b
        stats = self._build_stats(workers)
        self._doc_freqs = [freqs for freqs, _ in stats]
        self._doc_lens = [length for _, length in stats]
        self._avg_len = sum(self._doc_lens) / len(self._doc_lens)
        df: Counter = Counter()
        for freqs in self._doc_freqs:
            df.update(freqs.keys())
        n = len(self.documents)
        # BM25+-style floor keeps idf non-negative for very common terms.
        self._idf: Dict[str, float] = {
            term: max(math.log((n - d + 0.5) / (d + 0.5) + 1.0), 0.0)
            for term, d in df.items()
        }

    def _build_stats(self, workers: Optional[int]) -> List[Tuple[Counter, int]]:
        from ..parallel import WorkerPool, effective_workers

        if effective_workers(workers) > 1:
            with WorkerPool(effective_workers(workers)) as pool:
                return pool.map_chunked(_bm25_doc, self.documents)
        return [_bm25_doc(doc) for doc in self.documents]

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        """The index's single tokenisation rule (documents *and* queries)."""
        return text.split()

    def score(self, query: str, doc_id: int) -> float:
        """BM25 score of one document for the query."""
        return self._score_terms(self._tokenize(query), doc_id)

    def _score_terms(self, terms: Sequence[str], doc_id: int) -> float:
        """Score against an already-tokenised query (what ``search`` batches)."""
        if not 0 <= doc_id < len(self.documents):
            raise IndexError(f"doc_id {doc_id} out of range")
        freqs = self._doc_freqs[doc_id]
        length = self._doc_lens[doc_id]
        score = 0.0
        for term in terms:
            if term not in freqs:
                continue
            tf = freqs[term]
            idf = self._idf.get(term, 0.0)
            denom = tf + self.k1 * (1 - self.b + self.b * length / self._avg_len)
            score += idf * tf * (self.k1 + 1) / denom
        return score

    def search(self, query: str, top_k: int = 5) -> List[Tuple[int, float]]:
        """Top-``top_k`` ``(doc_id, score)`` pairs, best first.

        Ties break toward lower doc ids for determinism.  The query is
        tokenised exactly once, not once per document.
        """
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        terms = self._tokenize(query)
        scores = [(i, self._score_terms(terms, i))
                  for i in range(len(self.documents))]
        scores.sort(key=lambda pair: (-pair[1], pair[0]))
        return scores[:top_k]
