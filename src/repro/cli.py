"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror how an adopter would actually use the release:

* ``merge``   — fuse two (or more) checkpoints with any registered method;
* ``sweep``   — evaluate a λ sweep of the geodesic merge on OpenROAD QA;
* ``zoo``     — build / list the model-zoo checkpoints;
* ``chat``    — one-shot grounded question answering with a zoo model;
* ``table``   — regenerate one of the paper's tables or figures;
* ``merge-sweep`` — time a λ sweep, naive loop vs the merge engine;
* ``serve-bench`` — serial vs. batched+prefix-cached serving throughput;
* ``bench-train`` — fused-kernel vs. composed-graph training-step timing;
* ``bench-decode`` — cheap decode (int8 weights, paged KV, speculative)
  vs. its byte-exactness oracles;
* ``bench-kvplane`` — zero-copy KV plane (block-sharing prefix cache,
  prefill-into-slot, vectorized paged decode) vs. the copy path;
* ``bench-lambda`` — K λ-variants from one arena-resident merge plan vs
  K fully-materialized models (residency, parity, cold start, throughput);
* ``bench-parallel`` — WorkerPool eval fan-out vs. the serial item loop;
* ``obs-report`` — end-to-end train→merge→serve→eval→rag flow with the
  observability layer on: span tree + metric registry snapshot.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.karcher import karcher_merge_state_dicts
from .core.registry import available_methods, merge
from .nn.checkpoint import load_model, save_model, save_state_dict
from .nn.transformer import TransformerLM


def _cmd_merge(args: argparse.Namespace) -> int:
    chip, _ = load_model(args.chip)
    instruct, _ = load_model(args.instruct)
    if chip.config != instruct.config:
        print("error: models have different architectures", file=sys.stderr)
        return 2
    base_sd = None
    if args.base:
        base, _ = load_model(args.base)
        base_sd = base.state_dict()
    merged_sd = merge(args.method, chip=chip.state_dict(),
                      instruct=instruct.state_dict(), base=base_sd,
                      lam=args.lam)
    model = TransformerLM(chip.config)
    model.load_state_dict(dict(merged_sd))
    save_model(model, args.output, metadata={
        "method": args.method, "lam": args.lam,
        "chip": str(args.chip), "instruct": str(args.instruct)})
    print(f"merged with {args.method} (lam={args.lam}) -> {args.output}.npz")
    return 0


def _cmd_merge_many(args: argparse.Namespace) -> int:
    models = [load_model(path)[0] for path in args.models]
    configs = {m.config for m in models}
    if len(configs) != 1:
        print("error: models have different architectures", file=sys.stderr)
        return 2
    merged_sd = karcher_merge_state_dicts([m.state_dict() for m in models],
                                          weights=args.weights)
    out = TransformerLM(models[0].config)
    out.load_state_dict(dict(merged_sd))
    save_model(out, args.output, metadata={"method": "karcher",
                                           "inputs": [str(p) for p in args.models]})
    print(f"karcher-merged {len(models)} models -> {args.output}.npz")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .data import eval_triplets
    from .eval import LMAnswerer, run_openroad
    from .pipelines import default_zoo

    zoo = default_zoo(verbose=True)
    triplets = eval_triplets()[: args.items] if args.items else eval_triplets()
    lams = [round(i / (args.points - 1), 3) for i in range(args.points)]
    print(f"lambda sweep on {args.family} over {len(triplets)} items")
    for lam in lams:
        model = zoo.merged(args.family, "chipalign", lam=lam)
        report = run_openroad(LMAnswerer(model, zoo.tokenizer), triplets)
        print(f"  lambda={lam:<6} rougeL={report.overall:.3f}")
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from .pipelines import FAMILIES, default_zoo
    from .pipelines.model_zoo import CHIP_VARIANT

    zoo = default_zoo(verbose=True)
    if args.action == "build":
        zoo.prewarm()
        print("zoo ready at", zoo.cache_dir)
    else:
        for family in FAMILIES:
            variants = ["base", "instruct", CHIP_VARIANT[family]]
            print(f"{family}: {', '.join(variants)}")
    return 0


def _cmd_chat(args: argparse.Namespace) -> int:
    from .data.openroad_qa import documentation_corpus
    from .eval import LMAnswerer, OPENROAD_INSTRUCTIONS
    from .pipelines import default_zoo
    from .rag import RagPipeline

    zoo = default_zoo()
    if args.variant == "chipalign":
        model = zoo.merged(args.family, "chipalign", lam=args.lam)
    else:
        model = zoo.get(args.family, args.variant)
    answerer = LMAnswerer(model, zoo.tokenizer)
    retriever = RagPipeline(documentation_corpus())
    context = retriever.retrieve(args.question).context
    answer = answerer.answer(args.question, context=context,
                             instructions=OPENROAD_INSTRUCTIONS)
    print(f"context : {context}")
    print(f"answer  : {answer}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from .pipelines import (run_complexity, run_fig2, run_fig7, run_fig8,
                            run_table1, run_table2, run_table3)

    artifact = args.artifact
    if artifact == "table1":
        for result in run_table1(max_items=args.items):
            print(f"\n[{result.family}]\n{result.table}")
    elif artifact == "table2":
        print(run_table2().table)
    elif artifact == "table3":
        print(run_table3().table)
    elif artifact == "fig2":
        print(run_fig2().table)
    elif artifact == "fig7":
        print(run_fig7().table)
    elif artifact == "fig8":
        print(run_fig8(max_items=args.items).table)
    elif artifact == "complexity":
        result = run_complexity()
        print(result.table)
        print(f"linear-fit R^2 = {result.linear_fit_r2:.4f}")
    return 0


def _cmd_merge_sweep(args: argparse.Namespace) -> int:
    import time
    from collections import OrderedDict

    import numpy as np

    from .core.geodesic import geodesic_merge
    from .core.merge_engine import GeodesicMergeEngine
    from .nn.transformer import preset_config

    if (args.chip is None) != (args.instruct is None):
        print("error: pass both --chip and --instruct, or neither",
              file=sys.stderr)
        return 2
    if args.chip:
        chip_model, _ = load_model(args.chip)
        instruct_model, _ = load_model(args.instruct)
        if chip_model.config != instruct_model.config:
            print("error: models have different architectures", file=sys.stderr)
            return 2
        chip = chip_model.state_dict()
        instruct = instruct_model.state_dict()
        source = f"{args.chip} / {args.instruct}"
    else:
        config = preset_config(args.backbone, vocab_size=args.vocab, seed=0)
        chip = TransformerLM(config).state_dict()
        config_b = preset_config(args.backbone, vocab_size=args.vocab, seed=1)
        instruct = TransformerLM(config_b).state_dict()
        source = f"random {args.backbone} pair (seeds 0/1, vocab {args.vocab})"
    lams = [i / (args.points - 1) for i in range(args.points)]

    def naive_sweep():
        return [OrderedDict((key, geodesic_merge(chip[key], instruct[key], lam))
                            for key in chip) for lam in lams]

    def engine_sweep():
        return GeodesicMergeEngine(chip, instruct).sweep(
            lams, n_workers=args.workers)

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return time.perf_counter() - start, result

    n_params = sum(int(np.asarray(w).size) for w in chip.values())
    print(f"merge sweep: {source}, {len(chip)} tensors, "
          f"{n_params:,} params, {args.points} lambda points, "
          f"best of {args.repeats}")
    # Interleave the repeats so both sides sample the same machine
    # conditions (CPU frequency, cache pressure) — a sequential best-of
    # can hand one side a systematically faster window.
    naive_times, engine_times = [], []
    for _ in range(args.repeats):
        elapsed, naive_result = timed(naive_sweep)
        naive_times.append(elapsed)
        elapsed, engine_result = timed(engine_sweep)
        engine_times.append(elapsed)
    naive_t, engine_t = min(naive_times), min(engine_times)
    matches = all(
        np.allclose(naive_result[i][key], engine_result[i][key],
                    rtol=1e-10, atol=1e-13)
        for i in range(len(lams)) for key in chip)
    print(f"  naive per-lambda loop : {naive_t * 1e3:8.1f} ms")
    print(f"  merge engine sweep    : {engine_t * 1e3:8.1f} ms")
    print(f"  speedup               : {naive_t / engine_t:8.2f}x")
    print(f"  outputs allclose      : {matches}")
    return 0 if matches else 1


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .nn.transformer import preset_config
    from .serve import (ServeConfig, WorkloadSpec, format_benchmark_report,
                        run_serve_benchmark)

    config = preset_config(args.backbone, vocab_size=args.vocab, seed=args.seed)
    model = TransformerLM(config)
    max_prompt = args.prefix_tokens + args.unique_tokens
    if max_prompt + args.decode_tokens > config.max_seq_len:
        print(f"error: prompt ({max_prompt}) + decode ({args.decode_tokens}) "
              f"tokens exceed the {args.backbone} context window "
              f"({config.max_seq_len})", file=sys.stderr)
        return 2
    try:
        spec = WorkloadSpec(n_requests=args.requests,
                            shared_prefix_tokens=args.prefix_tokens,
                            unique_tokens=args.unique_tokens,
                            max_new_tokens=args.decode_tokens,
                            vocab_size=min(args.vocab, config.vocab_size),
                            seed=args.seed)
        serve_config = ServeConfig(max_batch_size=args.max_batch,
                                   decode_mode=args.decode_mode)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_serve_benchmark(model, spec, config=serve_config)
    print(f"backbone: {args.backbone} (dim={config.dim}, "
          f"layers={config.n_layers}, ctx={config.max_seq_len}), "
          f"max batch {args.max_batch}, decode mode {args.decode_mode}")
    print(format_benchmark_report(result, spec))
    return 0


def _cmd_serve_net(args: argparse.Namespace) -> int:
    """Run the socket front door in the foreground until SIGINT/SIGTERM,
    then drain gracefully (finish in-flight work, refuse new work)."""
    import signal
    import threading

    from .nn.transformer import preset_config
    from .serve import ServeConfig
    from .serve.net import NetServerConfig, NetServerThread, TenantConfig

    config = preset_config(args.backbone, vocab_size=args.vocab, seed=args.seed)
    model = TransformerLM(config)
    try:
        serve_config = ServeConfig(max_batch_size=args.max_batch,
                                   decode_mode=args.decode_mode)
        net_config = NetServerConfig(
            host=args.host, port=args.port,
            default_tenant=TenantConfig(rate=args.rate, burst=args.burst,
                                        max_queue=args.max_queue),
            max_queue_total=args.max_queue_total)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    handle = NetServerThread(model, serve_config=serve_config,
                             net_config=net_config)
    host, port = handle.start()
    print(f"serve-net: {args.backbone} backbone listening on {host}:{port} "
          f"(max batch {args.max_batch}, decode mode {args.decode_mode})")
    print("serve-net: SIGINT/SIGTERM drains gracefully")

    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    stop.wait()
    print("serve-net: draining (finishing in-flight, refusing new work)...")
    ledger = handle.drain(grace_s=args.grace)
    handle.stop()
    print(f"serve-net: drained — {ledger}")
    return 0 if ledger.get("conservation_ok") else 1


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """Run N engine replicas over one shared-memory weight copy behind the
    socket front door, in the foreground until SIGINT/SIGTERM."""
    import signal
    import threading

    from .nn.transformer import preset_config
    from .parallel import parallel_available
    from .serve import ServeConfig
    from .serve.fleet import FleetServer
    from .serve.net import NetServerConfig, NetServerThread, TenantConfig

    if not parallel_available():
        print("error: this platform cannot fork replica processes",
              file=sys.stderr)
        return 2
    config = preset_config(args.backbone, vocab_size=args.vocab,
                           seed=args.seed)
    model = TransformerLM(config)
    try:
        serve_config = ServeConfig(max_batch_size=args.max_batch,
                                   decode_mode=args.decode_mode)
        net_config = NetServerConfig(
            host=args.host, port=args.port,
            default_tenant=TenantConfig(rate=args.rate, burst=args.burst,
                                        max_queue=args.max_queue),
            max_queue_total=args.max_queue_total)
        fleet = FleetServer(model, n_replicas=args.replicas,
                            serve_config=serve_config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    handle = NetServerThread(None, inner=fleet, net_config=net_config)
    try:
        host, port = handle.start()
        print(f"serve-fleet: {args.replicas} x {args.backbone} replicas on "
              f"one shared weight copy, listening on {host}:{port} "
              f"(max batch {args.max_batch}/replica, decode mode "
              f"{args.decode_mode})")
        print("serve-fleet: SIGINT/SIGTERM drains gracefully")

        stop = threading.Event()
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        stop.wait()
        print("serve-fleet: draining (finishing in-flight, refusing new "
              "work)...")
        ledger = handle.drain(grace_s=args.grace)
        handle.stop()
        print(f"serve-fleet: drained — {ledger}")
        return 0 if ledger.get("conservation_ok") else 1
    finally:
        handle.stop()
        fleet.close()


def _cmd_serve_fleet_bench(args: argparse.Namespace) -> int:
    from .parallel import parallel_available
    from .serve.fleet_bench import (format_fleet_report, run_fleet_benchmark,
                                    write_fleet_snapshot)

    if not parallel_available():
        print("error: this platform cannot fork replica processes",
              file=sys.stderr)
        return 2
    try:
        result = run_fleet_benchmark(
            backbone=args.backbone, replicas=args.replicas,
            groups=args.groups, requests_per_group=args.requests_per_group,
            max_new_tokens=args.max_new_tokens, repeats=args.repeats,
            seed=args.seed)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_fleet_report(result))
    if args.json:
        write_fleet_snapshot(result, args.json)
        print(f"snapshot written to {args.json}")
    ok = (result["parity_ok"] and not result["leaked_segments"]
          and result["respawns"] == 0)
    if result["target_applies"] and result["speedup"] < result["speedup_target"]:
        print(f"error: speedup {result['speedup']:.2f}x below the "
              f"{result['speedup_target']:.1f}x target on "
              f"{result['cpu_count']} cores", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _cmd_bench_lambda(args: argparse.Namespace) -> int:
    from .parallel import parallel_available
    from .serve.lambda_bench import (format_lambda_report,
                                     run_lambda_benchmark,
                                     write_lambda_snapshot)

    if not parallel_available():
        print("error: this platform cannot fork replica processes",
              file=sys.stderr)
        return 2
    try:
        result = run_lambda_benchmark(
            backbone=args.backbone, n_variants=args.variants,
            replicas_per_variant=args.replicas_per_variant,
            requests_per_variant=args.requests_per_variant,
            max_new_tokens=args.max_new_tokens, repeats=args.repeats,
            seed=args.seed)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_lambda_report(result))
    if args.json:
        write_lambda_snapshot(result, args.json)
        print(f"snapshot written to {args.json}")
    memory, cold = result["memory"], result["cold"]
    ok = (result["parity_ok"] and not result["leaked_segments"]
          and result["respawns"] == 0
          and memory["plan_over_model"] <= memory["limit"]
          and cold["worst_gated_ratio"] <= cold["limit"])
    if result["target_applies"] and result["speedup"] < result["speedup_target"]:
        print(f"error: speedup {result['speedup']:.2f}x below the "
              f"{result['speedup_target']:.1f}x target on "
              f"{result['cpu_count']} cores", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _cmd_bench_decode(args: argparse.Namespace) -> int:
    from .serve.decode_bench import (format_decode_report,
                                     run_decode_benchmark,
                                     write_decode_snapshot)

    try:
        result = run_decode_benchmark(
            target_backbone=args.target, draft_backbone=args.draft,
            speculative_tokens=args.speculative_tokens,
            n_requests=args.requests, max_new_tokens=args.max_new_tokens,
            repeats=args.repeats, epochs=args.epochs, seed=args.seed)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_decode_report(result))
    if args.json:
        write_decode_snapshot(result, args.json)
        print(f"snapshot written to {args.json}")
    kv = result["kv"]
    ok = (result["parity_ok"] and kv["paged"]["leaked_blocks"] == 0
          and kv["paged"]["conservation_ok"] and kv["reserved_ratio"] <= 1.0)
    # The speedup floor only binds when the draft actually agrees with the
    # target; at low acceptance the report carries the waiver instead.
    if result["target_applies"] and result["speedup"] < result["speedup_target"]:
        print(f"error: speculative speedup {result['speedup']:.2f}x below "
              f"the {result['speedup_target']:.1f}x target at acceptance "
              f"{result['speculative']['acceptance_rate']:.2f}",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _cmd_bench_kvplane(args: argparse.Namespace) -> int:
    from .serve.kvplane_bench import (format_kvplane_report,
                                      run_kvplane_benchmark,
                                      write_kvplane_snapshot)

    try:
        result = run_kvplane_benchmark(
            block_tokens=args.block_tokens,
            grounding_blocks=args.grounding_blocks,
            n_groundings=args.groundings,
            tails_per_grounding=args.tails,
            batch=args.batch, repeats=args.repeats, steps=args.steps,
            epochs=args.epochs, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_kvplane_report(result))
    if args.json:
        write_kvplane_snapshot(result, args.json)
        print(f"snapshot written to {args.json}")
    ok = True
    if not result["parity_ok"]:
        print("error: shared-block serving diverged from the copy path",
              file=sys.stderr)
        ok = False
    if not result["zero_copy_ok"]:
        print(f"error: full prefix hits copied "
              f"{result['admission']['hot_bytes_copied']} KV bytes",
              file=sys.stderr)
        ok = False
    if result["admission_speedup"] < result["admission_speedup_target"]:
        print(f"error: hot admission speedup "
              f"{result['admission_speedup']:.2f}x below the "
              f"{result['admission_speedup_target']:.1f}x target",
              file=sys.stderr)
        ok = False
    if result["step_ratio"] > result["step_ratio_ceiling"]:
        print(f"error: paged decode step cost {result['step_ratio']:.3f}x "
              f"dense, above the {result['step_ratio_ceiling']:.2f}x ceiling",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _cmd_serve_net_bench(args: argparse.Namespace) -> int:
    from .serve.net.bench import (format_net_report, run_net_benchmark,
                                  write_net_snapshot)

    try:
        report = run_net_benchmark(backbone=args.backbone,
                                   n_requests=args.requests, seed=args.seed)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_net_report(report))
    if args.json:
        write_net_snapshot(report, args.json)
        print(f"snapshot written to {args.json}")
    return 0 if report["slo_ok"] else 1


def _cmd_bench_train(args: argparse.Namespace) -> int:
    from .nn.train_bench import (format_train_report, run_train_benchmark,
                                 write_snapshot)

    try:
        result = run_train_benchmark(
            backbone=args.backbone, steps=args.steps,
            batch_size=args.batch_size, seq_len=args.seq_len,
            vocab=args.vocab, repeats=args.repeats, seed=args.seed,
            lr=args.lr)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_train_report(result))
    if args.json:
        write_snapshot(result, args.json)
        print(f"snapshot written to {args.json}")
    return 0 if result["parity_ok"] else 1


def _cmd_bench_parallel(args: argparse.Namespace) -> int:
    from .parallel import parallel_available
    from .parallel.bench import (format_parallel_report,
                                 run_parallel_benchmark, write_snapshot)

    if not parallel_available():
        print("error: this platform cannot fork worker processes",
              file=sys.stderr)
        return 2
    try:
        result = run_parallel_benchmark(
            backbone=args.backbone, workers=args.workers,
            n_items=args.items, max_new_tokens=args.max_new_tokens,
            repeats=args.repeats, seed=args.seed)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_parallel_report(result))
    if args.json:
        write_snapshot(result, args.json)
        print(f"snapshot written to {args.json}")
    ok = result["parity_ok"] and not result["leaked_segments"]
    # The speedup floor only binds when the machine has the cores to run
    # the pool; a starved box reports the waiver instead of failing.
    if result["target_applies"] and result["speedup"] < result["speedup_target"]:
        print(f"error: speedup {result['speedup']:.2f}x below the "
              f"{result['speedup_target']:.1f}x target on "
              f"{result['cpu_count']} cores", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs import Observability
    from .obs.report import run_obs_flow

    obs = None
    if args.fake_clock:
        # Deterministic trace: every clock read advances exactly 1 ms, so
        # span durations depend only on the number of instrumented events.
        ticks = iter(range(10**9))

        def fake_clock() -> float:
            return next(ticks) * 1e-3

        obs = Observability(clock=fake_clock)
    obs, summary = run_obs_flow(obs=obs, epochs=args.epochs, items=args.items,
                                lam=args.lam)
    if args.fleet:
        # Fold a replica fleet's merged registry into the same report: run
        # a small routed burst and absorb every replica's serve.* counters
        # alongside the in-process flow's metrics.
        from .nn.transformer import preset_config
        from .parallel import parallel_available
        from .serve import SamplingParams, ServeConfig
        from .serve.fleet import FleetServer

        if not parallel_available():
            print("error: --fleet requires os.fork", file=sys.stderr)
            return 2
        model = TransformerLM(preset_config("nano", vocab_size=64, seed=0))
        with obs.span("serve.fleet.flow", replicas=args.fleet):
            with FleetServer(model, n_replicas=args.fleet,
                             serve_config=ServeConfig(max_batch_size=4),
                             obs=obs) as fleet:
                for i in range(args.fleet * 3):
                    fleet.submit(tuple(range(2 + i, 12 + i)),
                                 params=SamplingParams(max_new_tokens=4),
                                 request_id=f"obs-{i}")
                fleet.run_until_idle()
                merged = fleet.fleet_snapshot()["merged"]
        obs.registry.absorb(merged, key="obs-report-fleet")
    print(obs.report(max_roots=args.max_roots))
    print("== flow summary ==")
    for key, value in summary.items():
        print(f"{key:<20} {value}")
    if args.jsonl:
        obs.tracer.write_jsonl(args.jsonl)
        print(f"spans written to {args.jsonl}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ChipAlign reproduction command-line tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge", help="merge two checkpoints")
    p_merge.add_argument("--chip", required=True, type=Path)
    p_merge.add_argument("--instruct", required=True, type=Path)
    p_merge.add_argument("--base", type=Path, default=None,
                         help="base checkpoint (task-vector methods)")
    p_merge.add_argument("--method", default="chipalign",
                         choices=available_methods())
    p_merge.add_argument("--lam", type=float, default=0.6)
    p_merge.add_argument("--output", "-o", required=True, type=Path)
    p_merge.set_defaults(fn=_cmd_merge)

    p_many = sub.add_parser("merge-many",
                            help="Karcher-mean merge of N checkpoints")
    p_many.add_argument("models", nargs="+", type=Path)
    p_many.add_argument("--weights", nargs="+", type=float, default=None)
    p_many.add_argument("--output", "-o", required=True, type=Path)
    p_many.set_defaults(fn=_cmd_merge_many)

    p_sweep = sub.add_parser("sweep", help="lambda sweep on OpenROAD QA")
    p_sweep.add_argument("--family", default="nano")
    p_sweep.add_argument("--points", type=int, default=11)
    p_sweep.add_argument("--items", type=int, default=45)
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_zoo = sub.add_parser("zoo", help="build or list the model zoo")
    p_zoo.add_argument("action", choices=("build", "list"))
    p_zoo.set_defaults(fn=_cmd_zoo)

    p_chat = sub.add_parser("chat", help="one-shot grounded QA")
    p_chat.add_argument("question")
    p_chat.add_argument("--family", default="micro")
    p_chat.add_argument("--variant", default="chipalign",
                        choices=("instruct", "eda", "chipnemo", "chipalign"))
    p_chat.add_argument("--lam", type=float, default=0.6)
    p_chat.set_defaults(fn=_cmd_chat)

    p_table = sub.add_parser("table", help="regenerate a paper artifact")
    p_table.add_argument("artifact", choices=("table1", "table2", "table3",
                                              "fig2", "fig7", "fig8",
                                              "complexity"))
    p_table.add_argument("--items", type=int, default=None)
    p_table.set_defaults(fn=_cmd_table)

    p_msweep = sub.add_parser(
        "merge-sweep",
        help="time a lambda sweep: naive per-lambda merges vs the merge engine")
    p_msweep.add_argument("--backbone", default="grande",
                          help="preset architecture for the random model pair")
    p_msweep.add_argument("--chip", type=Path, default=None,
                          help="chip checkpoint (with --instruct; replaces "
                               "the random pair)")
    p_msweep.add_argument("--instruct", type=Path, default=None,
                          help="instruct checkpoint (with --chip)")
    p_msweep.add_argument("--points", type=int, default=11,
                          help="number of lambda points in [0, 1]")
    p_msweep.add_argument("--repeats", type=int, default=3,
                          help="timing repeats (best-of)")
    p_msweep.add_argument("--workers", type=int, default=None,
                          help="fork this many sweep worker processes")
    p_msweep.add_argument("--vocab", type=int, default=512,
                          help="vocab size of the random model pair")
    p_msweep.set_defaults(fn=_cmd_merge_sweep)

    p_serve = sub.add_parser(
        "serve-bench",
        help="benchmark batched serving against the serial engine")
    p_serve.add_argument("--backbone", default="nano",
                         choices=("nano", "micro", "grande"))
    p_serve.add_argument("--requests", type=int, default=16,
                         help="requests in the synthetic burst")
    p_serve.add_argument("--prefix-tokens", type=int, default=120,
                         help="shared instruction/context prefix length")
    p_serve.add_argument("--unique-tokens", type=int, default=12,
                         help="per-request unique prompt tail length")
    p_serve.add_argument("--decode-tokens", type=int, default=24,
                         help="decode budget per request")
    p_serve.add_argument("--max-batch", type=int, default=16,
                         help="continuous-batching slot count")
    p_serve.add_argument("--decode-mode", default="fused",
                         choices=("fused", "exact"))
    p_serve.add_argument("--vocab", type=int, default=128,
                         help="model vocabulary size (random weights)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.set_defaults(fn=_cmd_serve_bench)

    p_net = sub.add_parser(
        "serve-net",
        help="run the socket front door until SIGTERM, then drain")
    p_net.add_argument("--backbone", default="nano",
                       help="model preset to serve (nano/micro/grande)")
    p_net.add_argument("--host", default="127.0.0.1")
    p_net.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral, printed at startup)")
    p_net.add_argument("--max-batch", type=int, default=8)
    p_net.add_argument("--decode-mode", default="fused",
                       choices=("fused", "exact"))
    p_net.add_argument("--rate", type=float, default=float("inf"),
                       help="default tenant token-bucket rate (req/s)")
    p_net.add_argument("--burst", type=int, default=16,
                       help="default tenant token-bucket burst size")
    p_net.add_argument("--max-queue", type=int, default=64,
                       help="per-tenant admitted-queue bound")
    p_net.add_argument("--max-queue-total", type=int, default=256,
                       help="global admitted-queue bound")
    p_net.add_argument("--grace", type=float, default=60.0,
                       help="drain grace period in seconds")
    p_net.add_argument("--vocab", type=int, default=128)
    p_net.add_argument("--seed", type=int, default=0)
    p_net.set_defaults(fn=_cmd_serve_net)

    p_fleet = sub.add_parser(
        "serve-fleet",
        help="serve N engine replicas over one shared-memory weight copy "
             "behind the socket front door")
    p_fleet.add_argument("--backbone", default="nano",
                         choices=("nano", "micro", "grande"))
    p_fleet.add_argument("--replicas", type=int, default=2,
                         help="engine replica process count")
    p_fleet.add_argument("--host", default="127.0.0.1")
    p_fleet.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral, printed at startup)")
    p_fleet.add_argument("--max-batch", type=int, default=8,
                         help="continuous-batching slots per replica")
    p_fleet.add_argument("--decode-mode", default="fused",
                         choices=("fused", "exact"))
    p_fleet.add_argument("--rate", type=float, default=float("inf"),
                         help="default tenant token-bucket rate (req/s)")
    p_fleet.add_argument("--burst", type=int, default=16,
                         help="default tenant token-bucket burst size")
    p_fleet.add_argument("--max-queue", type=int, default=64,
                         help="per-tenant admitted-queue bound")
    p_fleet.add_argument("--max-queue-total", type=int, default=256,
                         help="global admitted-queue bound")
    p_fleet.add_argument("--grace", type=float, default=60.0,
                         help="drain grace period in seconds")
    p_fleet.add_argument("--vocab", type=int, default=128)
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.set_defaults(fn=_cmd_serve_fleet)

    p_fbench = sub.add_parser(
        "serve-fleet-bench",
        help="benchmark routed replicas vs a single engine; byte parity "
             "gated, >= 2x aggregate tokens/sec when cores allow")
    p_fbench.add_argument("--backbone", default="nano",
                          choices=("nano", "micro", "grande"))
    p_fbench.add_argument("--replicas", type=int, default=4,
                          help="replica count for the fleet arm")
    p_fbench.add_argument("--groups", type=int, default=None,
                          help="shared-prefix groups (default: 2x replicas)")
    p_fbench.add_argument("--requests-per-group", type=int, default=4)
    p_fbench.add_argument("--max-new-tokens", type=int, default=16,
                          help="decode budget per request")
    p_fbench.add_argument("--repeats", type=int, default=3,
                          help="interleaved timing rounds (min per side)")
    p_fbench.add_argument("--seed", type=int, default=0)
    p_fbench.add_argument("--json", type=Path, default=None,
                          help="also write the report as a JSON snapshot")
    p_fbench.set_defaults(fn=_cmd_serve_fleet_bench)

    p_lbench = sub.add_parser(
        "bench-lambda",
        help="benchmark K lambda-variants served from one arena-resident "
             "merge plan vs K materialized models; residency and byte "
             "parity gated, throughput when cores allow")
    p_lbench.add_argument("--backbone", default="nano",
                          choices=("nano", "micro", "grande"))
    p_lbench.add_argument("--variants", type=int, default=8,
                          help="family size K (scalar grid + layerwise "
                               "ramp + karcher midpoint)")
    p_lbench.add_argument("--replicas-per-variant", type=int, default=1)
    p_lbench.add_argument("--requests-per-variant", type=int, default=3)
    p_lbench.add_argument("--max-new-tokens", type=int, default=16,
                          help="decode budget per request")
    p_lbench.add_argument("--repeats", type=int, default=3,
                          help="interleaved timing rounds (min per side)")
    p_lbench.add_argument("--seed", type=int, default=0)
    p_lbench.add_argument("--json", type=Path, default=None,
                          help="also write the report as a JSON snapshot")
    p_lbench.set_defaults(fn=_cmd_bench_lambda)

    p_nbench = sub.add_parser(
        "serve-net-bench",
        help="socket serving SLO benchmark (parity/streaming/fairness/"
             "overload/drain); exit 1 if any SLO fails")
    p_nbench.add_argument("--backbone", default="nano")
    p_nbench.add_argument("--requests", type=int, default=16,
                          help="streaming-phase workload size")
    p_nbench.add_argument("--seed", type=int, default=3)
    p_nbench.add_argument("--json", type=Path, default=None,
                          help="also write the full report (with replayable "
                               "arrival schedules) to this path")
    p_nbench.set_defaults(fn=_cmd_serve_net_bench)

    p_dbench = sub.add_parser(
        "bench-decode",
        help="benchmark cheap decode (int8/paged KV/speculative) against "
             "its byte-exactness oracles; exit 1 if any gate fails")
    p_dbench.add_argument("--target", default="grande",
                          choices=("nano", "micro", "grande"),
                          help="target (served) backbone")
    p_dbench.add_argument("--draft", default="nano",
                          choices=("nano", "micro", "grande"),
                          help="draft backbone for speculative decoding")
    p_dbench.add_argument("--speculative-tokens", type=int, default=3,
                          help="draft chain length per verify round")
    p_dbench.add_argument("--requests", type=int, default=12,
                          help="requests per workload burst")
    p_dbench.add_argument("--max-new-tokens", type=int, default=32,
                          help="decode budget per request")
    p_dbench.add_argument("--repeats", type=int, default=5,
                          help="paired timing rounds (median ratio)")
    p_dbench.add_argument("--epochs", type=int, default=30,
                          help="training epochs for draft and target")
    p_dbench.add_argument("--seed", type=int, default=0)
    p_dbench.add_argument("--json", type=Path, default=None,
                          help="also write the report as a JSON snapshot")
    p_dbench.set_defaults(fn=_cmd_bench_decode)

    p_kbench = sub.add_parser(
        "bench-kvplane",
        help="benchmark the zero-copy KV plane (block sharing, hot "
             "admission, vectorized paged decode) against the copy path; "
             "exit 1 if any gate fails")
    p_kbench.add_argument("--block-tokens", type=int, default=16,
                          help="KV positions per paged block")
    p_kbench.add_argument("--grounding-blocks", type=int, default=14,
                          help="full blocks in the shared grounding prefix")
    p_kbench.add_argument("--groundings", type=int, default=4,
                          help="distinct grounding prefixes")
    p_kbench.add_argument("--tails", type=int, default=3,
                          help="hot (full-prefix-hit) requests per grounding")
    p_kbench.add_argument("--batch", type=int, default=4,
                          help="sequences per decode step in the step-cost "
                               "phase")
    p_kbench.add_argument("--repeats", type=int, default=5,
                          help="paired step-cost timing rounds (median ratio)")
    p_kbench.add_argument("--steps", type=int, default=30,
                          help="decode steps per timing round")
    p_kbench.add_argument("--epochs", type=int, default=25,
                          help="training epochs for the parity-phase model")
    p_kbench.add_argument("--seed", type=int, default=0)
    p_kbench.add_argument("--json", type=Path, default=None,
                          help="also write the report as a JSON snapshot")
    p_kbench.set_defaults(fn=_cmd_bench_kvplane)

    p_btrain = sub.add_parser(
        "bench-train",
        help="time training steps with fused kernels on vs off")
    p_btrain.add_argument("--backbone", default="grande",
                          choices=("nano", "micro", "grande"))
    p_btrain.add_argument("--steps", type=int, default=10,
                          help="optimiser steps per timed fit")
    p_btrain.add_argument("--batch-size", type=int, default=8,
                          help="sequences per step")
    p_btrain.add_argument("--seq-len", type=int, default=None,
                          help="tokens per sequence (default: context window)")
    p_btrain.add_argument("--vocab", type=int, default=256,
                          help="model vocabulary size (random weights)")
    p_btrain.add_argument("--repeats", type=int, default=3,
                          help="interleaved timing rounds (min per side)")
    p_btrain.add_argument("--lr", type=float, default=1e-3)
    p_btrain.add_argument("--seed", type=int, default=0)
    p_btrain.add_argument("--json", type=Path, default=None,
                          help="also write the report as a JSON snapshot")
    p_btrain.set_defaults(fn=_cmd_bench_train)

    p_bpar = sub.add_parser(
        "bench-parallel",
        help="time the OpenROAD QA eval with a worker pool vs serially")
    p_bpar.add_argument("--backbone", default="grande",
                        choices=("nano", "micro", "grande"))
    p_bpar.add_argument("--workers", type=int, default=4,
                        help="pool size for the parallel arm")
    p_bpar.add_argument("--items", type=int, default=None,
                        help="cap on eval items (default: all 90)")
    p_bpar.add_argument("--max-new-tokens", type=int, default=24,
                        help="decode budget per answer")
    p_bpar.add_argument("--repeats", type=int, default=3,
                        help="interleaved timing rounds (min per side)")
    p_bpar.add_argument("--seed", type=int, default=0)
    p_bpar.add_argument("--json", type=Path, default=None,
                        help="also write the report as a JSON snapshot")
    p_bpar.set_defaults(fn=_cmd_bench_parallel)

    p_obs = sub.add_parser(
        "obs-report",
        help="trace an end-to-end flow and print the span tree + metrics")
    p_obs.add_argument("--epochs", type=int, default=4,
                       help="training epochs for the stub model")
    p_obs.add_argument("--items", type=int, default=3,
                       help="OpenROAD QA items in the eval stage")
    p_obs.add_argument("--lam", type=float, default=0.6,
                       help="geodesic interpolation weight for the merge stage")
    p_obs.add_argument("--max-roots", type=int, default=40,
                       help="root spans shown before eliding the middle")
    p_obs.add_argument("--fake-clock", action="store_true",
                       help="use a deterministic 1ms-per-read clock")
    p_obs.add_argument("--fleet", type=int, default=0, metavar="N",
                       help="also run an N-replica serve fleet and fold its "
                            "merged registry into the report")
    p_obs.add_argument("--jsonl", type=Path, default=None,
                       help="also export the spans as JSONL")
    p_obs.set_defaults(fn=_cmd_obs_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
