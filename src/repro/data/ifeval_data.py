"""Synthetic IFEval-style prompt set (Table 3's benchmark).

IFEval's defining property is that each prompt carries one or more
*verifiable* instructions whose compliance is decided by deterministic
checker code.  This module builds such a prompt set over the general-world
questions, drawing instructions from the union of both alignment pools so
that models aligned on pool A (chat), pool B (the ChipNeMo-analog's mix), or
their merge are all measurably distinguishable — the geometry behind the
paper's Section IV-D result where the merged model beats both sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..eval.ifeval.instructions import (POOL_A_KINDS, POOL_B_KINDS,
                                        Instruction, build_instruction,
                                        filter_compatible)
from .corpus import general_qa_pairs
from .prompting import format_prompt


@dataclass(frozen=True)
class IFEvalPrompt:
    """One benchmark prompt with its verifiable instructions."""

    prompt: str
    question: str
    instructions: Tuple[Instruction, ...]


def ifeval_prompts(n_prompts: int = 120, seed: int = 2024,
                   max_instructions: int = 2) -> List[IFEvalPrompt]:
    """Build the benchmark prompt set.

    Instructions are sampled from the union of the two pools, weighted so
    pool-exclusive kinds appear often enough to separate the models.
    """
    union = tuple(dict.fromkeys(POOL_A_KINDS + POOL_B_KINDS))
    rng = np.random.default_rng(seed)
    qa = general_qa_pairs()
    prompts: List[IFEvalPrompt] = []
    for i in range(n_prompts):
        question, _ = qa[i % len(qa)]
        n = int(rng.integers(1, max_instructions + 1))
        chosen = [union[int(ki)] for ki in
                  rng.choice(len(union), size=min(n, len(union)), replace=False)]
        instructions: List[Instruction] = []
        for kind in filter_compatible(chosen):
            instructions.append(build_instruction(kind, rng, question=question))
        prompt = format_prompt(question, instructions=[ins.render() for ins in instructions])
        prompts.append(IFEvalPrompt(prompt, question, tuple(instructions)))
    return prompts
