"""Synthetic corpora and benchmark datasets (DESIGN.md §1 substitutions)."""

from .prompting import ASSISTANT_CUE, format_prompt, format_training_sequence
from .corpus import GENERAL_FACTS, general_qa_pairs, pretraining_sentences
from .eda_domain import (BUGS, CIRCUIT_FACTS, COMMANDS, FLOW_STAGES,
                         GUI_PROCEDURES, TOOL, all_documentation)
from .openroad_qa import QATriplet, documentation_corpus, eval_triplets, train_triplets
from .industrial_qa import (IndustrialItem, MultiTurnItem, eval_items,
                            multi_turn_items, train_items)
from .ifeval_data import IFEvalPrompt, ifeval_prompts
from .instruction_data import (InstructionSample, counterfactual_grounded_samples,
                               grounded_general_samples,
                               grounded_instruction_samples,
                               instruction_sft_samples, multi_turn_general_samples)
from .mcq import DOMAINS, MCQItem, items_by_domain, mcq_items
from .vocab import build_tokenizer

__all__ = [
    "ASSISTANT_CUE", "format_prompt", "format_training_sequence",
    "GENERAL_FACTS", "general_qa_pairs", "pretraining_sentences",
    "BUGS", "CIRCUIT_FACTS", "COMMANDS", "FLOW_STAGES", "GUI_PROCEDURES",
    "TOOL", "all_documentation",
    "QATriplet", "documentation_corpus", "eval_triplets", "train_triplets",
    "IndustrialItem", "MultiTurnItem", "eval_items", "multi_turn_items", "train_items",
    "IFEvalPrompt", "ifeval_prompts",
    "InstructionSample", "counterfactual_grounded_samples",
    "grounded_general_samples", "grounded_instruction_samples",
    "instruction_sft_samples",
    "multi_turn_general_samples",
    "DOMAINS", "MCQItem", "items_by_domain", "mcq_items",
    "build_tokenizer",
]
