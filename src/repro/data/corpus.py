"""The general-knowledge world: pretraining text and general QA.

This plays the role of the web-scale pretraining corpus and the general
question-answering distribution behind the paper's chat models.  It is a
closed world of simple facts — colors, animals, counts, weather — rendered
as declarative sentences (for language-model pretraining) and as
question/answer pairs (for instruction tuning and IFEval prompts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class GeneralFact:
    """A general-world fact with a question form and its short answer."""

    statement: str
    question: str
    answer: str


GENERAL_FACTS: Tuple[GeneralFact, ...] = (
    GeneralFact("the color of the sky is blue", "what is the color of the sky", "the color of the sky is blue"),
    GeneralFact("the color of grass is green", "what is the color of grass", "the color of grass is green"),
    GeneralFact("the color of snow is white", "what is the color of snow", "the color of snow is white"),
    GeneralFact("the color of coal is black", "what is the color of coal", "the color of coal is black"),
    GeneralFact("the color of a ripe tomato is red", "what is the color of a ripe tomato", "the color of a ripe tomato is red"),
    GeneralFact("the color of a lemon is yellow", "what is the color of a lemon", "the color of a lemon is yellow"),
    GeneralFact("a dog says woof", "what does a dog say", "a dog says woof"),
    GeneralFact("a cat says meow", "what does a cat say", "a cat says meow"),
    GeneralFact("a cow says moo", "what does a cow say", "a cow says moo"),
    GeneralFact("a duck says quack", "what does a duck say", "a duck says quack"),
    GeneralFact("a sheep says baa", "what does a sheep say", "a sheep says baa"),
    GeneralFact("a week has seven days", "how many days are in a week", "a week has seven days"),
    GeneralFact("a year has twelve months", "how many months are in a year", "a year has twelve months"),
    GeneralFact("a triangle has three sides", "how many sides does a triangle have", "a triangle has three sides"),
    GeneralFact("a square has four sides", "how many sides does a square have", "a square has four sides"),
    GeneralFact("a hand has five fingers", "how many fingers are on a hand", "a hand has five fingers"),
    GeneralFact("rain falls from clouds", "where does rain fall from", "rain falls from clouds"),
    GeneralFact("the sun rises in the east", "where does the sun rise", "the sun rises in the east"),
    GeneralFact("the sun sets in the west", "where does the sun set", "the sun sets in the west"),
    GeneralFact("fish live in water", "where do fish live", "fish live in water"),
    GeneralFact("birds fly in the sky", "where do birds fly", "birds fly in the sky"),
    GeneralFact("bees make honey", "what do bees make", "bees make honey"),
    GeneralFact("cows give milk", "what do cows give", "cows give milk"),
    GeneralFact("hens lay eggs", "what do hens lay", "hens lay eggs"),
    GeneralFact("ice is frozen water", "what is ice", "ice is frozen water"),
    GeneralFact("steam is hot water vapor", "what is steam", "steam is hot water vapor"),
    GeneralFact("honey tastes sweet", "how does honey taste", "honey tastes sweet"),
    GeneralFact("a lemon tastes sour", "how does a lemon taste", "a lemon tastes sour"),
    GeneralFact("winter is the cold season", "which season is cold", "winter is the cold season"),
    GeneralFact("summer is the warm season", "which season is warm", "summer is the warm season"),
    GeneralFact("a library holds many books", "what does a library hold", "a library holds many books"),
    GeneralFact("a garden grows many plants", "what does a garden grow", "a garden grows many plants"),
    GeneralFact("a baker makes fresh bread", "what does a baker make", "a baker makes fresh bread"),
    GeneralFact("a farmer grows the crops", "what does a farmer grow", "a farmer grows the crops"),
    GeneralFact("a pilot flies the plane", "who flies the plane", "a pilot flies the plane"),
    GeneralFact("a doctor helps sick people", "who helps sick people", "a doctor helps sick people"),
    GeneralFact("a teacher works at a school", "where does a teacher work", "a teacher works at a school"),
    GeneralFact("a sailor works on a ship", "where does a sailor work", "a sailor works on a ship"),
    GeneralFact("the moon orbits the earth", "what does the moon orbit", "the moon orbits the earth"),
    GeneralFact("the earth orbits the sun", "what does the earth orbit", "the earth orbits the sun"),
)


@dataclass(frozen=True)
class GroundingTemplate:
    """A fact template with a substitutable slot, for counterfactual
    reading-comprehension training: the context asserts a (possibly
    world-knowledge-violating) filled statement and the correct answer is
    whatever the *context* says — which forces a genuine copy-from-context
    skill instead of memorised QA."""

    statement: str  # contains one "{x}" slot
    question: str
    fills: Tuple[str, ...]

    def fill(self, value: str) -> str:
        return self.statement.format(x=value)


COLOR_FILLS = ("blue", "green", "red", "yellow", "white", "black")
COUNT_FILLS = ("three", "four", "five", "seven", "twelve", "eight")
SOUND_FILLS = ("woof", "meow", "moo", "quack", "baa")
PLACE_FILLS = ("water", "clouds", "the east", "the west", "a school", "a ship")

GROUNDING_TEMPLATES: Tuple[GroundingTemplate, ...] = (
    GroundingTemplate("the color of the sky is {x}", "what is the color of the sky", COLOR_FILLS),
    GroundingTemplate("the color of grass is {x}", "what is the color of grass", COLOR_FILLS),
    GroundingTemplate("the color of snow is {x}", "what is the color of snow", COLOR_FILLS),
    GroundingTemplate("the color of coal is {x}", "what is the color of coal", COLOR_FILLS),
    GroundingTemplate("the color of a lemon is {x}", "what is the color of a lemon", COLOR_FILLS),
    GroundingTemplate("a dog says {x}", "what does a dog say", SOUND_FILLS),
    GroundingTemplate("a cat says {x}", "what does a cat say", SOUND_FILLS),
    GroundingTemplate("a cow says {x}", "what does a cow say", SOUND_FILLS),
    GroundingTemplate("a week has {x} days", "how many days are in a week", COUNT_FILLS),
    GroundingTemplate("a year has {x} months", "how many months are in a year", COUNT_FILLS),
    GroundingTemplate("a triangle has {x} sides", "how many sides does a triangle have", COUNT_FILLS),
    GroundingTemplate("a hand has {x} fingers", "how many fingers are on a hand", COUNT_FILLS),
    GroundingTemplate("fish live in {x}", "where do fish live", PLACE_FILLS),
    GroundingTemplate("rain falls from {x}", "where does rain fall from", PLACE_FILLS),
    GroundingTemplate("the sun rises in {x}", "where does the sun rise", PLACE_FILLS),
    GroundingTemplate("a teacher works at {x}", "where does a teacher work", PLACE_FILLS),
)


def pretraining_sentences(repeats: int = 4, seed: int = 0) -> List[str]:
    """The base pretraining corpus: shuffled repetitions of every statement.

    ``repeats`` controls corpus size; shuffling varies sentence order across
    epochs the way document sampling would.
    """
    rng = np.random.default_rng(seed)
    sentences = [f.statement for f in GENERAL_FACTS]
    corpus: List[str] = []
    for _ in range(repeats):
        order = rng.permutation(len(sentences))
        corpus.extend(sentences[i] for i in order)
    return corpus


def general_qa_pairs() -> List[Tuple[str, str]]:
    """All general-world ``(question, answer)`` pairs."""
    return [(f.question, f.answer) for f in GENERAL_FACTS]
