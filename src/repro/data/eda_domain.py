"""A deterministic synthetic EDA knowledge base.

This module is the stand-in for the OpenROAD documentation and NVIDIA's
internal chip-design corpus (DESIGN.md §1).  It defines a fictional but
structurally realistic RTL-to-GDS tool called ``orflow`` — commands with
options and defaults, a staged VLSI flow, GUI procedures, install and test
instructions — plus bug reports and circuit facts used by the multi-choice
benchmark.

Everything is expressed in a closed lowercase vocabulary so the substrate
models' word-level tokenizer stays small, and every accessor is
deterministic: the same facts, documentation paragraphs, and QA pairs are
produced on every call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

TOOL = "orflow"

# ---------------------------------------------------------------------------
# Commands: name -> (purpose phrase, flow stage, [(option, role, default)])
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CommandSpec:
    """One tool command with its options."""

    name: str
    purpose: str
    stage: str
    options: Tuple[Tuple[str, str, str], ...] = ()


COMMANDS: Tuple[CommandSpec, ...] = (
    CommandSpec("read_verilog", "reads the rtl netlist into the tool", "synthesis",
                (("file", "gives the path of the netlist file", "design.v"),
                 ("top", "names the top module of the design", "core"))),
    CommandSpec("read_liberty", "loads the cell timing library", "synthesis",
                (("corner", "selects the timing corner to load", "typical"),)),
    CommandSpec("synth_design", "maps the rtl onto library cells", "synthesis",
                (("effort", "controls the optimization effort level", "medium"),
                 ("retime", "enables register retiming during mapping", "off"))),
    CommandSpec("init_floorplan", "creates the die area and rows", "floorplan",
                (("utilization", "sets the target core utilization", "0.55"),
                 ("aspect", "sets the ratio of core height to width", "1.0"),
                 ("margin", "sets the spacing between core and die edge", "2"))),
    CommandSpec("place_pins", "assigns io pins to die edges", "floorplan",
                (("layer", "chooses the metal layer for the pins", "metal4"),
                 ("spread", "spreads pins evenly along each edge", "on"))),
    CommandSpec("insert_tapcells", "adds tap cells to prevent latchup", "floorplan",
                (("distance", "sets the maximum distance between tap cells", "20"),)),
    CommandSpec("build_pdn", "builds the power delivery network", "floorplan",
                (("pitch", "sets the pitch of the power straps", "10"),
                 ("width", "sets the width of each power strap", "1"))),
    CommandSpec("global_place", "performs global placement of cells", "placement",
                (("density", "sets the target placement density", "0.7"),
                 ("padding", "adds extra site padding around each cell", "2"),
                 ("timing_driven", "makes placement optimize the timing cost", "on"))),
    CommandSpec("detail_place", "legalizes and refines the placement", "placement",
                (("max_disp", "limits the displacement of each cell", "5"),)),
    CommandSpec("clock_tree_synth", "builds the clock distribution tree", "cts",
                (("buffer", "selects the buffer cell for the tree", "clkbuf_x4"),
                 ("skew", "sets the target clock skew bound", "50"))),
    CommandSpec("repair_timing", "fixes setup and hold violations", "cts",
                (("setup_margin", "adds extra margin to setup checks", "0.1"),
                 ("hold_margin", "adds extra margin to hold checks", "0.05"))),
    CommandSpec("global_route", "plans routing over a coarse grid", "routing",
                (("congestion", "sets the allowed congestion overflow", "0"),
                 ("layers", "restricts the layer range for routing", "metal2 metal7"))),
    CommandSpec("detail_route", "performs final track assignment and routing", "routing",
                (("drc_iters", "sets the number of drc repair iterations", "8"),)),
    CommandSpec("insert_fill", "inserts filler cells into empty sites", "finishing",
                (("cells", "lists the filler cells to use", "fill_x1 fill_x2"),)),
    CommandSpec("write_gds", "streams the final layout to gds", "finishing",
                (("file", "gives the path of the output gds file", "design.gds"),)),
    CommandSpec("report_timing", "prints the worst timing paths", "analysis",
                (("paths", "sets the number of paths to report", "10"),
                 ("mode", "selects setup or hold analysis", "setup"))),
    CommandSpec("report_power", "prints the power of the design", "analysis",
                (("unit", "selects the unit used in the report", "milliwatt"),)),
    CommandSpec("report_area", "prints the cell area of the design", "analysis", ()),
    CommandSpec("check_drc", "checks the layout against design rules", "analysis",
                (("limit", "sets the maximum violations to print", "100"),)),
    CommandSpec("write_def", "saves the placed and routed design to def", "finishing",
                (("file", "gives the path of the output def file", "design.def"),)),
)

COMMAND_BY_NAME: Dict[str, CommandSpec] = {c.name: c for c in COMMANDS}

# ---------------------------------------------------------------------------
# Flow stages, ordered.
# ---------------------------------------------------------------------------

FLOW_STAGES: Tuple[Tuple[str, str], ...] = (
    ("synthesis", "maps the rtl description onto library cells"),
    ("floorplan", "defines the die area and the power network"),
    ("placement", "decides the location of every standard cell"),
    ("cts", "builds the clock tree and repairs timing"),
    ("routing", "connects the placed cells with metal wires"),
    ("finishing", "adds filler cells and writes the final layout"),
)

STAGE_ORDER: Tuple[str, ...] = tuple(name for name, _ in FLOW_STAGES)

# ---------------------------------------------------------------------------
# GUI procedures: name -> (goal phrase, ordered steps)
# ---------------------------------------------------------------------------

GUI_PROCEDURES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "view timing paths": (
        "view the setup and hold timing paths",
        ("click the timing icon in the toolbar",
         "select paths and then update in the timing report window",
         "choose the setup tab or the hold tab",
         "read the arrival time and the slack for each path segment"),
    ),
    "view placement density": (
        "inspect the placement density map",
        ("open the heatmap menu in the toolbar",
         "select the density option from the heatmap menu",
         "adjust the grid size slider to refine the map"),
    ),
    "highlight a net": (
        "highlight one net of the design",
        ("type the net name into the search box",
         "press enter to zoom to the net",
         "pick a highlight color from the palette"),
    ),
    "view clock tree": (
        "inspect the synthesized clock tree",
        ("open the clock menu in the toolbar",
         "select the tree view option",
         "hover over a buffer to see its insertion delay"),
    ),
    "measure a distance": (
        "measure the distance between two points",
        ("press the ruler key to enter ruler mode",
         "click the first point and then the second point",
         "read the distance in the status bar"),
    ),
    "view drc violations": (
        "inspect the drc violations of the layout",
        ("open the drc viewer from the tools menu",
         "load the report file produced by check_drc",
         "click a violation row to zoom to its location"),
    ),
    "view net routing": (
        "inspect the routing of a single net",
        ("select the net in the object browser",
         "enable the routing layer toggles on the left panel",
         "follow the highlighted wire across the layers"),
    ),
    "capture a screenshot": (
        "capture an image of the current view",
        ("arrange the view you want to capture",
         "open the file menu and choose the save image entry",
         "pick a file name and confirm the dialog"),
    ),
}

# ---------------------------------------------------------------------------
# Install and test knowledge.
# ---------------------------------------------------------------------------

INSTALL_STEPS: Tuple[str, ...] = (
    "clone the orflow repository from the public mirror",
    "run the dependency script with sudo to install packages",
    "create a build directory and run cmake inside it",
    "run make with the jobs flag to compile the tool",
    "add the binary directory to your path variable",
)

TEST_FACTS: Tuple[Tuple[str, str], ...] = (
    ("smoke", "run the smoke suite with the command make test_smoke to check the basic flow"),
    ("unit", "run the unit suite with the command make test_unit to check each module"),
    ("regression", "run the regression suite with the command make test_regs to check full designs"),
    ("single test", "pass the name flag to make test_regs to run one regression design"),
)

# ---------------------------------------------------------------------------
# Bug reports for the multi-choice benchmark (ChipNeMo's bugs domain).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BugRecord:
    """A bug report: symptom, root cause, and the fix that resolved it."""

    bug_id: str
    symptom: str
    cause: str
    fix: str


BUGS: Tuple[BugRecord, ...] = (
    BugRecord("bug one", "the router loops forever on dense macros",
              "the congestion overflow was set to a negative value",
              "clamp the congestion option to zero or more"),
    BugRecord("bug two", "the placer crashes on designs with no io pins",
              "the pin spread code divides by the pin count",
              "skip pin spreading when the pin count is zero"),
    BugRecord("bug three", "the clock tree has a huge skew on wide dies",
              "the buffer library lacked a strong enough driver",
              "allow the tree to pick the clkbuf_x8 buffer"),
    BugRecord("bug four", "the gds writer drops the filler cells",
              "the fill cells were tagged with a virtual attribute",
              "strip the virtual attribute before streaming"),
    BugRecord("bug five", "the timing report shows paths twice",
              "the path collector did not dedupe across corners",
              "merge paths with the same endpoints across corners"),
    BugRecord("bug six", "the power report prints zero for all nets",
              "the switching activity file was never loaded",
              "load the activity file before calling report_power"),
    BugRecord("bug seven", "the drc checker misses spacing errors on metal7",
              "the rule deck truncated layers above metal6",
              "extend the rule deck to cover every routing layer"),
    BugRecord("bug eight", "the floorplan rows overlap the macro halo",
              "the row generator ignored the halo margin",
              "subtract the halo from the row area before cutting rows"),
)

# ---------------------------------------------------------------------------
# Circuit facts for the multi-choice benchmark (circuits domain).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CircuitFact:
    """One circuit-design fact with its subject for question templating."""

    subject: str
    fact: str


CIRCUIT_FACTS: Tuple[CircuitFact, ...] = (
    CircuitFact("nand gate", "a nand gate outputs low only when both inputs are high"),
    CircuitFact("nor gate", "a nor gate outputs high only when both inputs are low"),
    CircuitFact("xor gate", "a xor gate outputs high when the inputs differ"),
    CircuitFact("setup time", "setup time is the interval data must be stable before the clock edge"),
    CircuitFact("hold time", "hold time is the interval data must be stable after the clock edge"),
    CircuitFact("flip flop", "a flip flop samples its input on the active clock edge"),
    CircuitFact("latch", "a latch passes its input while the enable signal is high"),
    CircuitFact("clock skew", "clock skew is the arrival difference of the clock at two registers"),
    CircuitFact("critical path", "the critical path is the slowest register to register path"),
    CircuitFact("leakage power", "leakage power flows even when the circuit is idle"),
    CircuitFact("dynamic power", "dynamic power grows with the switching activity and the frequency"),
    CircuitFact("metastability", "metastability happens when a register samples a changing input"),
)


# ---------------------------------------------------------------------------
# Documentation rendering.
# ---------------------------------------------------------------------------


def command_paragraph(cmd: CommandSpec) -> str:
    """Render the documentation paragraph for one command."""
    parts = [f"the command {cmd.name} {cmd.purpose} .",
             f"the command {cmd.name} belongs to the {cmd.stage} stage ."]
    for opt, role, default in cmd.options:
        parts.append(f"the option {opt} of {cmd.name} {role} .")
        parts.append(f"the default of {opt} is {default} .")
    return " ".join(parts)


def stage_paragraph() -> str:
    """Render the flow-overview paragraph."""
    parts = []
    for i, (name, desc) in enumerate(FLOW_STAGES):
        parts.append(f"the {name} stage {desc} .")
        if i > 0:
            parts.append(f"the {name} stage runs after the {FLOW_STAGES[i - 1][0]} stage .")
    return " ".join(parts)


def gui_paragraph(name: str) -> str:
    """Render the documentation paragraph for one GUI procedure."""
    goal, steps = GUI_PROCEDURES[name]
    parts = [f"to {goal} in the {TOOL} gui follow these steps ."]
    words = ["first", "then", "next", "finally", "last"]
    for i, step in enumerate(steps):
        parts.append(f"{words[min(i, len(words) - 1)]} {step} .")
    return " ".join(parts)


def install_paragraph() -> str:
    """Render the install-guide paragraph."""
    parts = [f"to install {TOOL} follow these steps ."]
    words = ["first", "then", "next", "after that", "finally"]
    for i, step in enumerate(INSTALL_STEPS):
        parts.append(f"{words[min(i, len(words) - 1)]} {step} .")
    return " ".join(parts)


def test_paragraph() -> str:
    """Render the testing-guide paragraph."""
    parts = [f"{TOOL} ships three test suites ."]
    for _, fact in TEST_FACTS:
        parts.append(f"{fact} .")
    return " ".join(parts)


def bug_paragraph(bug: BugRecord) -> str:
    """Render one bug report as a documentation paragraph."""
    return (f"{bug.bug_id} reports that {bug.symptom} . "
            f"the cause was that {bug.cause} . "
            f"the fix was to {bug.fix} .")


def circuit_paragraph(fact: CircuitFact) -> str:
    """Render one circuit fact as a documentation sentence."""
    return f"{fact.fact} ."


def all_documentation() -> List[str]:
    """Every documentation paragraph in the knowledge base.

    This is the DAPT corpus: what ChipNeMo's 24B-token chip corpus is to the
    paper, this list is to the substrate models.
    """
    docs: List[str] = [command_paragraph(c) for c in COMMANDS]
    docs.append(stage_paragraph())
    docs.extend(gui_paragraph(name) for name in GUI_PROCEDURES)
    docs.append(install_paragraph())
    docs.append(test_paragraph())
    docs.extend(bug_paragraph(b) for b in BUGS)
    docs.extend(circuit_paragraph(f) for f in CIRCUIT_FACTS)
    return docs
