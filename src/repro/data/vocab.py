"""Global vocabulary construction.

All models in the zoo share one word-level tokenizer (the analogue of the
paper's requirement that merged models share an architecture and embedding
table).  The vocabulary is the closed union of every corpus, benchmark, and
instruction phrase in the repository, built deterministically.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..eval.ifeval.instructions import ALL_KINDS, build_instruction
from ..nn.tokenizer import WordTokenizer
from . import corpus, eda_domain, industrial_qa, mcq, openroad_qa
from .extraction import extraction_pretraining_samples
from .ifeval_data import ifeval_prompts
from .instruction_data import (counterfactual_grounded_samples,
                               instruction_sft_samples)
from .prompting import format_prompt


def _all_texts() -> List[str]:
    texts: List[str] = []
    # General world.
    texts.extend(f.statement for f in corpus.GENERAL_FACTS)
    texts.extend(q for q, _ in corpus.general_qa_pairs())
    # EDA world.
    texts.extend(eda_domain.all_documentation())
    for t in openroad_qa._all_triplets():
        texts.extend((t.context, t.question, t.answer))
    # Industrial world.
    texts.extend(industrial_qa.documentation_corpus())
    for it in industrial_qa.all_items() + industrial_qa.eval_items():
        texts.extend((it.context, it.question, it.answer))
    for mt in industrial_qa.multi_turn_items():
        texts.extend((mt.context, mt.first_question, mt.first_answer,
                      mt.question, mt.answer))
    # Multiple choice.
    for item in mcq.mcq_items():
        texts.append(item.question)
        texts.extend(item.choices)
    # Instruction phrases: render every kind with every parameterisation the
    # generators can produce (a generous sample covers all pool words).
    rng = np.random.default_rng(0)
    for _ in range(200):
        for kind in ALL_KINDS:
            ins = build_instruction(kind, rng, question="what is the color of the sky")
            texts.append(ins.render())
            texts.append(ins.make_compliant("the color of the sky is blue"))
    # Instruction-SFT and IFEval prompt surfaces.
    for sample in instruction_sft_samples(pool="ab", per_question=2, seed=1):
        texts.extend((sample.prompt, sample.response))
    for sample in counterfactual_grounded_samples(n_samples=200, seed=1):
        texts.extend((sample.prompt, sample.response))
    texts.extend(extraction_pretraining_samples(n_samples=20, seed=1))
    for p in ifeval_prompts(n_prompts=40, seed=1):
        texts.append(p.prompt)
    # Prompt grammar keywords and grounded-answer connectives.
    texts.append(format_prompt("q", context="c", instructions=["i"],
                               history=[("hq", "ha")]))
    texts.append("i do not have enough information to answer this question")
    texts.append("based on the context")
    texts.append("answer using only the provided context")
    texts.append("make your answer rigorous and concrete")
    return texts


def build_tokenizer() -> WordTokenizer:
    """Build the shared tokenizer over the closed world vocabulary."""
    return WordTokenizer.from_corpus(_all_texts())
