"""Multi-choice chip QA benchmark (Figure 7's dataset).

ChipNeMo's in-house multiple-choice benchmarks cover EDA scripts, bug
summaries, and circuit design; the items carry *no instructions*, so they
measure pure domain knowledge.  We build the synthetic equivalent from the
EDA knowledge base: each item has one correct statement and three
same-domain distractors, and models are scored by length-normalised
log-probability of each choice (closed-book — no context is provided).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .eda_domain import BUGS, CIRCUIT_FACTS, COMMANDS

DOMAINS = ("eda_scripts", "bugs", "circuits")


@dataclass(frozen=True)
class MCQItem:
    """One multiple-choice item; ``answer_idx`` indexes ``choices``."""

    question: str
    choices: Tuple[str, ...]
    answer_idx: int
    domain: str


def _shuffle_in(correct: str, distractors: List[str], rng) -> Tuple[Tuple[str, ...], int]:
    choices = [correct] + distractors[:3]
    order = rng.permutation(len(choices))
    shuffled = tuple(choices[i] for i in order)
    return shuffled, int(np.where(order == 0)[0][0])


def mcq_items(seed: int = 7) -> List[MCQItem]:
    """All multiple-choice items across the three domains."""
    rng = np.random.default_rng(seed)
    items: List[MCQItem] = []

    # EDA scripts: which command performs a given task.
    for cmd in COMMANDS:
        others = [c for c in COMMANDS if c.name != cmd.name]
        picks = rng.choice(len(others), size=3, replace=False)
        correct = f"the command {cmd.name}"
        distractors = [f"the command {others[int(i)].name}" for i in picks]
        choices, idx = _shuffle_in(correct, distractors, rng)
        items.append(MCQItem(f"which command {cmd.purpose}", choices, idx, "eda_scripts"))

    # Bugs: what caused a reported symptom.
    for bug in BUGS:
        others = [b for b in BUGS if b.bug_id != bug.bug_id]
        picks = rng.choice(len(others), size=3, replace=False)
        correct = f"the cause was that {bug.cause}"
        distractors = [f"the cause was that {others[int(i)].cause}" for i in picks]
        choices, idx = _shuffle_in(correct, distractors, rng)
        items.append(MCQItem(f"what caused the problem where {bug.symptom}",
                             choices, idx, "bugs"))

    # Circuits: complete the fact about a subject.
    for fact in CIRCUIT_FACTS:
        others = [f for f in CIRCUIT_FACTS if f.subject != fact.subject]
        picks = rng.choice(len(others), size=3, replace=False)
        distractors = [others[int(i)].fact for i in picks]
        choices, idx = _shuffle_in(fact.fact, distractors, rng)
        items.append(MCQItem(f"which statement about the {fact.subject} is true",
                             choices, idx, "circuits"))

    return items


def items_by_domain(domain: str, seed: int = 7) -> List[MCQItem]:
    """Items of one domain; raises for unknown domains."""
    if domain not in DOMAINS:
        raise KeyError(f"unknown MCQ domain {domain!r}; choose from {DOMAINS}")
    return [it for it in mcq_items(seed) if it.domain == domain]
