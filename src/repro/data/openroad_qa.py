"""Synthetic OpenROAD-QA-style benchmark (Table 1's dataset).

Generates context-query-answer triplets over the :mod:`repro.data.eda_domain`
knowledge base in the paper's three categories:

* ``functionality`` — command purposes, option roles, option defaults;
* ``vlsi_flow`` — stage purposes, stage ordering, command→stage mapping;
* ``gui_install_test`` — GUI procedures, installation, test suites.

Every answer appears verbatim inside its golden context, mirroring the
benchmark's design where answers must be grounded in retrieved documentation.
Facts are deterministically split into a DAFT *training* pool and a held-out
*evaluation* pool; the evaluation set has 90 items like the paper's.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .eda_domain import (COMMANDS, FLOW_STAGES, GUI_PROCEDURES, INSTALL_STEPS,
                         TEST_FACTS, TOOL, command_paragraph, gui_paragraph,
                         install_paragraph, stage_paragraph, test_paragraph)

CATEGORIES = ("functionality", "vlsi_flow", "gui_install_test")

#: Number of evaluation items per category (sums to 90 like the paper).
EVAL_QUOTA: Dict[str, int] = {"functionality": 40, "vlsi_flow": 25, "gui_install_test": 25}


@dataclass(frozen=True)
class QATriplet:
    """One context-query-answer item."""

    context: str
    question: str
    answer: str
    category: str
    fact_key: str
    variant: int


def _steps_answer(steps: Sequence[str]) -> str:
    words = ["first", "then", "next", "after that", "finally"]
    parts = [f"{words[min(i, len(words) - 1)]} {s}" for i, s in enumerate(steps)]
    return " . ".join(parts)


def _all_triplets() -> List[QATriplet]:
    triplets: List[QATriplet] = []

    # -- functionality ----------------------------------------------------
    for cmd in COMMANDS:
        ctx = command_paragraph(cmd)
        answer = f"the command {cmd.name} {cmd.purpose}"
        for variant, q in enumerate((
            f"what does the command {cmd.name} do",
            f"what is the purpose of the command {cmd.name}",
        )):
            triplets.append(QATriplet(ctx, q, answer, "functionality",
                                      f"purpose:{cmd.name}", variant))
        for opt, role, default in cmd.options:
            role_answer = f"the option {opt} of {cmd.name} {role}"
            for variant, q in enumerate((
                f"which option of {cmd.name} {role}",
                f"what option of the command {cmd.name} {role}",
            )):
                triplets.append(QATriplet(ctx, q, role_answer, "functionality",
                                          f"optrole:{cmd.name}:{opt}", variant))
            # Domain answer convention: the benchmark's golden answers spell
            # out the option-command binding, which the context's terse
            # "the default of X is Y" sentence does not — so reproducing it
            # requires the DAFT-learned answer style, not just extraction.
            default_answer = f"the default value of {opt} for {cmd.name} is {default}"
            for variant, q in enumerate((
                f"what is the default value of {opt} for {cmd.name}",
                f"which default value does the option {opt} of {cmd.name} have",
            )):
                triplets.append(QATriplet(ctx, q, default_answer, "functionality",
                                          f"optdefault:{cmd.name}:{opt}", variant))

    # -- vlsi flow ---------------------------------------------------------
    flow_ctx = stage_paragraph()
    for i, (stage, desc) in enumerate(FLOW_STAGES):
        answer = f"the {stage} stage {desc}"
        for variant, q in enumerate((
            f"what does the {stage} stage do",
            f"what is the role of the {stage} stage in the flow",
        )):
            triplets.append(QATriplet(flow_ctx, q, answer, "vlsi_flow",
                                      f"stagedesc:{stage}", variant))
        if i > 0:
            prev = FLOW_STAGES[i - 1][0]
            order_answer = f"the {stage} stage runs after the {prev} stage"
            for variant, q in enumerate((
                f"which stage runs after the {prev} stage",
                f"what stage comes after the {prev} stage in the flow",
            )):
                triplets.append(QATriplet(flow_ctx, q, order_answer, "vlsi_flow",
                                          f"stageorder:{stage}", variant))
    for cmd in COMMANDS:
        ctx = command_paragraph(cmd)
        answer = f"the command {cmd.name} belongs to the {cmd.stage} stage"
        for variant, q in enumerate((
            f"which stage does the command {cmd.name} belong to",
            f"in which flow stage is the command {cmd.name} used",
        )):
            triplets.append(QATriplet(ctx, q, answer, "vlsi_flow",
                                      f"cmdstage:{cmd.name}", variant))

    # -- gui & install & test ----------------------------------------------
    for name, (goal, steps) in GUI_PROCEDURES.items():
        ctx = gui_paragraph(name)
        answer = _steps_answer(steps)
        for variant, q in enumerate((
            f"how can i {goal} in the {TOOL} gui",
            f"which steps let me {goal} in the gui",
        )):
            triplets.append(QATriplet(ctx, q, answer, "gui_install_test",
                                      f"gui:{name}", variant))
        first_answer = f"first {steps[0]}"
        for variant, q in enumerate((
            f"what is the first step to {goal} in the gui",
            f"where do i start if i want to {goal} in the gui",
        )):
            triplets.append(QATriplet(ctx, q, first_answer, "gui_install_test",
                                      f"guifirst:{name}", variant))
        for k in range(len(steps) - 1):
            step_answer = f"then {steps[k + 1]}"
            for variant, q in enumerate((
                f"what should i do after i {steps[k]}",
                f"which step follows after i {steps[k]}",
            )):
                triplets.append(QATriplet(ctx, q, step_answer, "gui_install_test",
                                          f"guistep:{name}:{k}", variant))
    install_ctx = install_paragraph()
    install_answer = _steps_answer(INSTALL_STEPS)
    for variant, q in enumerate((
        f"how do i install {TOOL} from source",
        f"which steps are needed to install {TOOL}",
    )):
        triplets.append(QATriplet(install_ctx, q, install_answer, "gui_install_test",
                                  "install:all", variant))
    first_install = f"first {INSTALL_STEPS[0]}"
    for variant, q in enumerate((
        f"what is the first step to install {TOOL}",
        f"where do i begin when installing {TOOL}",
    )):
        triplets.append(QATriplet(install_ctx, q, first_install, "gui_install_test",
                                  "install:first", variant))
    words = ["first", "then", "next", "after that", "finally"]
    for k in range(len(INSTALL_STEPS) - 1):
        marker = words[min(k + 1, len(words) - 1)]
        step_answer = f"{marker} {INSTALL_STEPS[k + 1]}"
        for variant, q in enumerate((
            f"what should i do after i {INSTALL_STEPS[k]}",
            f"which install step follows after i {INSTALL_STEPS[k]}",
        )):
            triplets.append(QATriplet(install_ctx, q, step_answer, "gui_install_test",
                                      f"installstep:{k}", variant))
    test_ctx = test_paragraph()
    for suite, fact in TEST_FACTS:
        answer = fact
        for variant, q in enumerate((
            f"how do i run the {suite} checks for {TOOL}",
            f"which command runs the {suite} checks",
        )):
            triplets.append(QATriplet(test_ctx, q, answer, "gui_install_test",
                                      f"test:{suite}", variant))

    return triplets


def _is_eval_fact(fact_key: str) -> bool:
    """Deterministic ~40% of facts are held out for evaluation."""
    digest = hashlib.sha256(fact_key.encode()).digest()
    return digest[0] < 0.40 * 256


def train_triplets() -> List[QATriplet]:
    """DAFT training triplets (all phrasings of the training facts)."""
    return [t for t in _all_triplets() if not _is_eval_fact(t.fact_key)]


def eval_triplets() -> List[QATriplet]:
    """The 90-item evaluation set, category-balanced like the paper's."""
    pool = [t for t in _all_triplets() if _is_eval_fact(t.fact_key)]
    per_category: List[List[QATriplet]] = []
    for category in CATEGORIES:
        cands = [t for t in pool if t.category == category]
        cands.sort(key=lambda t: hashlib.sha256(
            f"{t.fact_key}:{t.variant}".encode()).hexdigest())
        quota = EVAL_QUOTA[category]
        if len(cands) < quota:
            raise RuntimeError(
                f"not enough held-out {category} items: {len(cands)} < {quota}"
            )
        per_category.append(cands[:quota])
    # Interleave categories so any prefix of the eval list is stratified
    # (the benchmarks' quick mode evaluates a prefix).
    selected: List[QATriplet] = []
    longest = max(len(c) for c in per_category)
    for i in range(longest):
        for cands in per_category:
            if i < len(cands):
                selected.append(cands[i])
    return selected


def documentation_corpus() -> List[str]:
    """All documentation paragraphs (the RAG retrieval pool)."""
    from .eda_domain import all_documentation

    return all_documentation()
