"""Synthetic instruction-following training data.

The paper points out that high-quality instruction datasets are proprietary;
this module is our stand-in.  It pairs general-world QA with verifiable
instructions from :mod:`repro.eval.ifeval.instructions` and produces
*compliant* responses, so supervised fine-tuning on these samples aligns a
model the way RLHF'd chat data aligned LLaMA-Chat.

Two overlapping instruction pools model the paper's Section IV-D finding:
the chat models are aligned on pool A; the ChipNeMo-analog's DAFT mix uses
pool B (its OASST/SteerLM analog).  Their union is what a geodesic merge can
inherit, letting the merged model beat *both* sources on IFEval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..eval.ifeval.instructions import (POOL_A_KINDS, POOL_B_KINDS,
                                        Instruction, build_instruction,
                                        filter_compatible)
from .corpus import GROUNDING_TEMPLATES, general_qa_pairs
from .prompting import REFUSAL, format_prompt


@dataclass(frozen=True)
class InstructionSample:
    """One supervised instruction-following example."""

    prompt: str
    response: str
    instructions: Tuple[Instruction, ...]
    question: str


def _render_sample(question: str, answer: str,
                   instructions: Sequence[Instruction]) -> InstructionSample:
    response = answer
    # Apply inner-most first so structural wrappers (quotes, prefixes) end up
    # outermost in a deterministic order: content edits, then suffix, prefix,
    # quoting.
    priority = {"include_word": 0, "avoid_word": 0,
                "two_parts": 2, "end_with": 3, "repeat_question": 4,
                "start_with": 5, "quote_wrap": 6,
                "max_words": 9, "min_words": 9}
    ordered = sorted(instructions, key=lambda ins: priority.get(ins.kind, 0))
    for ins in ordered:
        response = ins.make_compliant(response)
    prompt = format_prompt(question, instructions=[i.render() for i in instructions])
    return InstructionSample(prompt, response, tuple(instructions), question)


def instruction_sft_samples(pool: str = "a", per_question: int = 3,
                            max_instructions: int = 2, seed: int = 0,
                            include_plain: bool = True) -> List[InstructionSample]:
    """Generate instruction-SFT samples over the general-world QA pairs.

    Parameters
    ----------
    pool:
        ``"a"`` for the chat models' pool, ``"b"`` for the ChipNeMo-analog's
        complementary pool, ``"ab"`` for the union (used by oracle ablations).
    per_question:
        Number of differently-instructed variants per question.
    max_instructions:
        Upper bound on instructions combined in one prompt.
    include_plain:
        Also emit one instruction-free variant per question, which keeps the
        model able to answer unadorned prompts.
    """
    kinds = {"a": POOL_A_KINDS, "b": POOL_B_KINDS,
             "ab": tuple(dict.fromkeys(POOL_A_KINDS + POOL_B_KINDS))}[pool]
    rng = np.random.default_rng(seed)
    samples: List[InstructionSample] = []
    for question, answer in general_qa_pairs():
        if include_plain:
            samples.append(InstructionSample(format_prompt(question), answer, (), question))
        for _ in range(per_question):
            n = int(rng.integers(1, max_instructions + 1))
            chosen = [kinds[int(ki)] for ki in
                      rng.choice(len(kinds), size=n, replace=False)]
            instructions: List[Instruction] = []
            for kind in filter_compatible(chosen):
                instructions.append(build_instruction(kind, rng, question=question))
            samples.append(_render_sample(question, answer, instructions))
    return samples


def grounded_general_samples(n_samples: int = 120, seed: int = 5,
                             pool: str = "a", n_context: int = 3,
                             instruction_fraction: float = 0.5) -> List[InstructionSample]:
    """Reading-comprehension samples over the general world.

    Each sample shows a small context of general statements (one of which
    answers the question) and asks the model to ground its answer in it —
    the capability real chat models have from their SFT mixtures and which
    the industrial prompts (Figure 6) rely on.
    """
    kinds = {"a": POOL_A_KINDS, "b": POOL_B_KINDS}[pool]
    rng = np.random.default_rng(seed)
    qa = general_qa_pairs()
    samples: List[InstructionSample] = []
    for sample_idx in range(n_samples):
        idx = rng.choice(len(qa), size=n_context, replace=False)
        target = int(idx[int(rng.integers(n_context))])
        question, answer = qa[target]
        statements = [qa[int(i)][1] for i in idx]
        if sample_idx % 2 == 0:
            context = " . ".join(statements)
        else:
            # The chunked context format the industrial prompts use (Fig. 6).
            context = " ".join(f"chunk {i} : {s}" for i, s in enumerate(statements))
        instructions: Tuple[Instruction, ...] = ()
        response = answer
        if rng.random() < instruction_fraction:
            kind = kinds[int(rng.integers(len(kinds)))]
            ins = build_instruction(kind, rng, question=question)
            instructions = (ins,)
            response = ins.make_compliant(response)
        prompt = format_prompt(question, context=context,
                               instructions=[i.render() for i in instructions])
        samples.append(InstructionSample(prompt, response, instructions, question))
    return samples


def counterfactual_grounded_samples(n_samples: int = 150, seed: int = 9,
                                    pool: str = "a", n_context: int = 3,
                                    instruction_fraction: float = 0.3,
                                    refusal_fraction: float = 0.25) -> List[InstructionSample]:
    """RAFT-style counterfactual reading comprehension.

    Contexts assert *randomly filled* statements (often contradicting world
    knowledge) and the golden answer follows the context, so a model can
    only score by genuinely copying from the context — the extraction skill
    real chat models carry and that the industrial prompts require.  Half of
    the samples use the chunked context format.
    """
    kinds = {"a": POOL_A_KINDS, "b": POOL_B_KINDS}[pool]
    rng = np.random.default_rng(seed)
    samples: List[InstructionSample] = []
    groups = {}
    for i, t in enumerate(GROUNDING_TEMPLATES):
        groups.setdefault(t.fills, []).append(i)
    group_list = list(groups.values())
    for sample_idx in range(n_samples):
        if rng.random() < refusal_fraction:
            # Off-topic context (Figure 6's retrieval-failure case): the
            # question's template group is disjoint from the context's, and
            # the aligned behaviour is to refuse.
            gi = int(rng.integers(len(group_list)))
            target_group = group_list[gi]
            other = [i for g in group_list[:gi] + group_list[gi + 1:] for i in g]
            ctx_idx = rng.choice(len(other), size=n_context, replace=False)
            idx = [other[int(i)] for i in ctx_idx]
            statements = []
            for i in idx:
                template = GROUNDING_TEMPLATES[int(i)]
                fill = template.fills[int(rng.integers(len(template.fills)))]
                statements.append(template.fill(fill))
            target = GROUNDING_TEMPLATES[target_group[int(rng.integers(len(target_group)))]]
            question = target.question
            answer = REFUSAL
        else:
            idx = rng.choice(len(GROUNDING_TEMPLATES), size=n_context, replace=False)
            statements = []
            for i in idx:
                template = GROUNDING_TEMPLATES[int(i)]
                fill = template.fills[int(rng.integers(len(template.fills)))]
                statements.append(template.fill(fill))
            target_pos = int(rng.integers(n_context))
            target = GROUNDING_TEMPLATES[int(idx[target_pos])]
            question = target.question
            answer = statements[target_pos]
        if sample_idx % 2 == 0:
            context = " . ".join(statements)
        else:
            context = " ".join(f"chunk {i} : {s}" for i, s in enumerate(statements))
        instructions: Tuple[Instruction, ...] = ()
        response = answer
        if rng.random() < instruction_fraction:
            kind = kinds[int(rng.integers(len(kinds)))]
            ins = build_instruction(kind, rng, question=question)
            instructions = (ins,)
            response = ins.make_compliant(response)
        prompt = format_prompt(question, context=context,
                               instructions=[i.render() for i in instructions])
        samples.append(InstructionSample(prompt, response, instructions, question))
    return samples


def multi_turn_general_samples(n_samples: int = 60, seed: int = 3,
                               pool: str = "a") -> List[InstructionSample]:
    """Two-turn general QA samples teaching the conversation-history format.

    Each sample prepends one earlier (question, answer) turn to a fresh
    question; half the samples carry an instruction on the current turn.
    """
    kinds = {"a": POOL_A_KINDS, "b": POOL_B_KINDS}[pool]
    rng = np.random.default_rng(seed)
    qa = general_qa_pairs()
    samples: List[InstructionSample] = []
    for i in range(n_samples):
        first = qa[int(rng.integers(len(qa)))]
        second = qa[int(rng.integers(len(qa)))]
        instructions: Tuple[Instruction, ...] = ()
        response = second[1]
        if i % 2 == 0:
            kind = kinds[int(rng.integers(len(kinds)))]
            ins = build_instruction(kind, rng, question=second[0])
            instructions = (ins,)
            response = ins.make_compliant(response)
        prompt = format_prompt(second[0], history=[first],
                               instructions=[i.render() for i in instructions])
        samples.append(InstructionSample(prompt, response, instructions, second[0]))
    return samples


def grounded_instruction_samples(triplets, pool: str = "b", seed: int = 0,
                                 fraction: float = 0.5) -> List[InstructionSample]:
    """Instruction samples over *context-grounded* QA triplets.

    Used to mix a little alignment data into domain fine-tuning (the paper's
    ChipNeMo DAFT includes OASST chat data).  ``triplets`` is a sequence of
    objects with ``.context``, ``.question`` and ``.answer`` attributes.
    """
    kinds = {"a": POOL_A_KINDS, "b": POOL_B_KINDS}[pool]
    rng = np.random.default_rng(seed)
    samples: List[InstructionSample] = []
    for triplet in triplets:
        if rng.random() > fraction:
            continue
        kind = kinds[int(rng.integers(len(kinds)))]
        ins = build_instruction(kind, rng, question=triplet.question)
        response = ins.make_compliant(triplet.answer)
        prompt = format_prompt(triplet.question, context=triplet.context,
                               instructions=[ins.render()])
        samples.append(InstructionSample(prompt, response, (ins,), triplet.question))
    return samples
