"""Canonical prompt grammar shared by training data, benchmarks, and examples.

All models in the zoo — chat, EDA, ChipNeMo-analog, merged — speak this one
prompt format, mirroring how the paper's models share a chat template:

``[context : <ctx>] question : <q> [instruction : <i1> and <i2>] assistant :``

with earlier turns prepended verbatim for multi-turn conversations.  The
``assistant :`` cue is where generation starts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

ASSISTANT_CUE = "assistant :"

#: The canonical refusal an aligned model gives when the provided context
#: does not contain the asked-about information (Figure 6's golden answer).
REFUSAL = "i do not have enough information to answer this question"


def format_prompt(question: str, context: Optional[str] = None,
                  instructions: Sequence[str] = (),
                  history: Sequence[Tuple[str, str]] = ()) -> str:
    """Render a prompt in the canonical grammar.

    Parameters
    ----------
    question:
        The current question text.
    context:
        Optional grounding context placed before the question.
    instructions:
        Rendered instruction texts, joined with ``and``.
    history:
        Earlier ``(question, answer)`` turns for multi-turn prompts.
    """
    parts: List[str] = []
    if context:
        parts.append(f"context : {context}")
    for past_q, past_a in history:
        parts.append(f"question : {past_q}")
        parts.append(f"{ASSISTANT_CUE} {past_a}")
    parts.append(f"question : {question}")
    if instructions:
        parts.append("instruction : " + " and ".join(instructions))
    parts.append(ASSISTANT_CUE)
    return " ".join(parts)


def format_training_sequence(tokenizer, prompt: str, response: str):
    """Encode a supervised pair into ``(token_ids, loss_mask)``.

    Loss is applied to the response tokens and the end-of-sequence token
    only; the prompt is context (standard SFT masking).
    """
    prompt_ids = tokenizer.encode(prompt, add_bos=True)
    response_ids = tokenizer.encode(response, add_eos=True)
    ids = prompt_ids + response_ids
    mask = [0] * len(prompt_ids) + [1] * len(response_ids)
    return ids, mask


def fits_context(tokenizer, prompt: str, response: str, max_seq_len: int) -> bool:
    """True if the supervised pair fits in a model context of ``max_seq_len``."""
    ids, _ = format_training_sequence(tokenizer, prompt, response)
    return len(ids) <= max_seq_len
