"""Synthetic industrial production-level chip QA (Table 2's dataset).

The paper evaluates on 39 proprietary questions from NVIDIA hardware
engineers across four domains — hardware architecture (ARCH), build
processes (BUILD), job scheduling (LSF), and verification (TESTGEN) — in
single- and multi-turn settings, with RAG-retrieved context chunks and
explicit grounding instructions in every prompt (Figure 6).

This module builds the closest synthetic equivalent: a fictional SoC
(``orion``), build tool (``zmake``), job scheduler (``jsub``/``jstat``), and
test generator (``testgen``), each with documented facts, chunked contexts,
question/answer pairs, and two-turn conversations.  The evaluation set has
39 single-turn questions (10/10/10/9 per category) like the paper's.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .prompting import REFUSAL

CATEGORIES = ("arch", "build", "lsf", "testgen")

EVAL_QUOTA: Dict[str, int] = {"arch": 10, "build": 10, "lsf": 10, "testgen": 9}

#: Of each category's eval quota, this many items are *unanswerable*: their
#: chunks deliberately omit the asked-about fact and the golden answer is the
#: refusal sentence below.  This reproduces the Figure 6 scenario where the
#: grounding instruction obliges a model to admit missing information — the
#: failure mode that separates aligned from unaligned chip models.
UNANSWERABLE_PER_CATEGORY = 2

@dataclass(frozen=True)
class InfraFact:
    """One fact of the fictional infrastructure world."""

    key: str
    category: str
    sentence: str
    questions: Tuple[str, ...]
    answer: str


FACTS: Tuple[InfraFact, ...] = (
    # ----- ARCH ----------------------------------------------------------
    InfraFact("arch:clusters", "arch",
              "the orion chip has four cpu clusters",
              ("how many cpu clusters does the orion chip have",
               "what is the cpu cluster count of the orion chip"),
              "the orion chip has four cpu clusters"),
    InfraFact("arch:cores", "arch",
              "each cpu cluster of orion holds eight cores",
              ("how many cores are in each orion cpu cluster",
               "what is the core count per cluster in orion"),
              "each cpu cluster of orion holds eight cores"),
    InfraFact("arch:noc", "arch",
              "the mesh noc connects the cpu clusters of orion",
              ("what connects the cpu clusters of orion",
               "which fabric links the orion cpu clusters"),
              "the mesh noc connects the cpu clusters of orion"),
    InfraFact("arch:l2", "arch",
              "the l2 cache of orion holds two megabytes per cluster",
              ("how large is the l2 cache per cluster in orion",
               "what is the size of the orion l2 cache per cluster"),
              "the l2 cache of orion holds two megabytes per cluster"),
    InfraFact("arch:ddr", "arch",
              "the memory controller of orion supports two ddr channels",
              ("how many ddr channels does the orion memory controller support",
               "what is the ddr channel count of orion"),
              "the memory controller of orion supports two ddr channels"),
    InfraFact("arch:dma", "arch",
              "the dma engine of orion moves data between memory and devices",
              ("what does the dma engine of orion do",
               "which block of orion moves data between memory and devices"),
              "the dma engine of orion moves data between memory and devices"),
    InfraFact("arch:bootrom", "arch",
              "the boot rom of orion loads the first stage loader",
              ("what does the boot rom of orion load",
               "which block loads the first stage loader in orion"),
              "the boot rom of orion loads the first stage loader"),
    InfraFact("arch:power", "arch",
              "the power unit of orion gates each cluster separately",
              ("how does the power unit of orion gate the clusters",
               "what does the orion power unit gate"),
              "the power unit of orion gates each cluster separately"),
    InfraFact("arch:gpu", "arch",
              "the orion chip pairs the clusters with one shared gpu block",
              ("how many gpu blocks does the orion chip have",
               "which gpu arrangement does the orion chip use"),
              "the orion chip pairs the clusters with one shared gpu block"),
    InfraFact("arch:interrupt", "arch",
              "the interrupt unit of orion routes device signals to the cores",
              ("what does the interrupt unit of orion route",
               "which unit routes device signals to the orion cores"),
              "the interrupt unit of orion routes device signals to the cores"),
    InfraFact("arch:debug", "arch",
              "the debug port of orion exposes the trace stream over jtag",
              ("what does the debug port of orion expose",
               "how is the trace stream of orion exposed"),
              "the debug port of orion exposes the trace stream over jtag"),
    InfraFact("arch:freq", "arch",
              "the cpu clusters of orion run at two gigahertz",
              ("at what frequency do the orion cpu clusters run",
               "what is the clock frequency of the orion clusters"),
              "the cpu clusters of orion run at two gigahertz"),
    # ----- BUILD ---------------------------------------------------------
    InfraFact("build:tool", "build",
              "the tool zmake builds sandbox targets for the chip project",
              ("which tool builds sandbox targets for the chip project",
               "what does the tool zmake build"),
              "the tool zmake builds sandbox targets for the chip project"),
    InfraFact("build:build_flag", "build",
              "use the build flag of zmake with a target name to build it with all its dependencies",
              ("how do i build a specific sandbox target with zmake",
               "which zmake flag builds a target with its dependencies"),
              "use the build flag of zmake with a target name to build it with all its dependencies"),
    InfraFact("build:only_flag", "build",
              "use the only flag of zmake to build one target without its dependencies",
              ("how do i build one target without its dependencies in zmake",
               "which zmake flag skips the dependencies of a target"),
              "use the only flag of zmake to build one target without its dependencies"),
    InfraFact("build:clean_flag", "build",
              "use the clean flag of zmake to remove the output tree",
              ("how do i remove the output tree with zmake",
               "which zmake flag cleans the build outputs"),
              "use the clean flag of zmake to remove the output tree"),
    InfraFact("build:jobs_flag", "build",
              "use the jobs flag of zmake to set the number of parallel jobs",
              ("how do i set the number of parallel jobs in zmake",
               "which zmake flag controls build parallelism"),
              "use the jobs flag of zmake to set the number of parallel jobs"),
    InfraFact("build:config", "build",
              "the config file zmake.cfg lists the default targets of the sandbox",
              ("which file lists the default targets of the sandbox",
               "where are the default zmake targets listed"),
              "the config file zmake.cfg lists the default targets of the sandbox"),
    InfraFact("build:version_flag", "build",
              "use the version flag of zmake with a tag to build a tagged version of a target",
              ("how do i build a specific version of a target with zmake",
               "which zmake flag builds a tagged version"),
              "use the version flag of zmake with a tag to build a tagged version of a target"),
    InfraFact("build:log", "build",
              "zmake writes the build log into the file build.log",
              ("where does zmake write the build log",
               "which file holds the zmake build log"),
              "zmake writes the build log into the file build.log"),
    InfraFact("build:cache", "build",
              "zmake stores compiled objects in a shared cache directory",
              ("where does zmake store compiled objects",
               "what does the zmake shared cache hold"),
              "zmake stores compiled objects in a shared cache directory"),
    InfraFact("build:verify_flag", "build",
              "use the verify flag of zmake to check a target without building it",
              ("how do i check a target without building it in zmake",
               "which zmake flag verifies a target"),
              "use the verify flag of zmake to check a target without building it"),
    InfraFact("build:list_flag", "build",
              "use the list flag of zmake to print every known target",
              ("how do i print every known zmake target",
               "which zmake flag lists the targets"),
              "use the list flag of zmake to print every known target"),
    InfraFact("build:retry", "build",
              "failed zmake steps can be retried with the retry flag",
              ("how do i retry failed zmake steps",
               "which zmake flag retries failed steps"),
              "failed zmake steps can be retried with the retry flag"),
    # ----- LSF -----------------------------------------------------------
    InfraFact("lsf:submit", "lsf",
              "submit a batch job with the command jsub",
              ("which command submits a batch job",
               "how do i submit a job to the farm"),
              "submit a batch job with the command jsub"),
    InfraFact("lsf:queue_flag", "lsf",
              "use the queue flag of jsub to select the batch queue",
              ("how do i select the batch queue for a job",
               "which jsub flag picks the queue"),
              "use the queue flag of jsub to select the batch queue"),
    InfraFact("lsf:mem_flag", "lsf",
              "use the mem flag of jsub to request memory for a job",
              ("how do i request memory for a job",
               "which jsub flag reserves memory"),
              "use the mem flag of jsub to request memory for a job"),
    InfraFact("lsf:status", "lsf",
              "check the status of your jobs with the command jstat",
              ("which command checks the status of my jobs",
               "how do i see the state of my batch jobs"),
              "check the status of your jobs with the command jstat"),
    InfraFact("lsf:kill", "lsf",
              "kill a running job with the command jkill and the job id",
              ("how do i kill a running job",
               "which command stops a job by its id"),
              "kill a running job with the command jkill and the job id"),
    InfraFact("lsf:short_queue", "lsf",
              "the short queue allows jobs up to one hour",
              ("how long may jobs run in the short queue",
               "what is the time limit of the short queue"),
              "the short queue allows jobs up to one hour"),
    InfraFact("lsf:long_queue", "lsf",
              "the long queue allows jobs up to one day",
              ("how long may jobs run in the long queue",
               "what is the time limit of the long queue"),
              "the long queue allows jobs up to one day"),
    InfraFact("lsf:hold", "lsf",
              "pause a pending job with the command jhold",
              ("how do i pause a pending job",
               "which command holds a job before it starts"),
              "pause a pending job with the command jhold"),
    InfraFact("lsf:priority", "lsf",
              "use the priority flag of jsub to raise the priority of a job",
              ("how do i raise the priority of a job",
               "which jsub flag changes the job priority"),
              "use the priority flag of jsub to raise the priority of a job"),
    InfraFact("lsf:output", "lsf",
              "the output of a job is written to the file job.out",
              ("where is the output of a job written",
               "which file holds the job output"),
              "the output of a job is written to the file job.out"),
    InfraFact("lsf:limit", "lsf",
              "each user may run at most forty jobs at once",
              ("how many jobs may one user run at once",
               "what is the per user job limit on the farm"),
              "each user may run at most forty jobs at once"),
    InfraFact("lsf:array", "lsf",
              "use the array flag of jsub to submit many similar jobs",
              ("how do i submit many similar jobs at once",
               "which jsub flag creates a job array"),
              "use the array flag of jsub to submit many similar jobs"),
    # ----- TESTGEN -------------------------------------------------------
    InfraFact("testgen:tool", "testgen",
              "the tool testgen creates random tests for the design",
              ("which tool creates random tests for the design",
               "what does the tool testgen create"),
              "the tool testgen creates random tests for the design"),
    InfraFact("testgen:seed_flag", "testgen",
              "use the seed flag of testgen to fix the random seed",
              ("how do i fix the random seed of testgen",
               "which testgen flag controls the seed"),
              "use the seed flag of testgen to fix the random seed"),
    InfraFact("testgen:count_flag", "testgen",
              "use the count flag of testgen to set the number of tests",
              ("how do i set the number of generated tests",
               "which testgen flag sets the test count"),
              "use the count flag of testgen to set the number of tests"),
    InfraFact("testgen:focus_flag", "testgen",
              "use the focus flag of testgen to target one block of the design",
              ("how do i target one block with testgen",
               "which testgen flag focuses on a block"),
              "use the focus flag of testgen to target one block of the design"),
    InfraFact("testgen:results", "testgen",
              "testgen writes the results into the results directory",
              ("where does testgen write the results",
               "which directory holds the testgen results"),
              "testgen writes the results into the results directory"),
    InfraFact("testgen:replay_flag", "testgen",
              "use the replay flag of testgen with a test id to rerun one test",
              ("how do i rerun one failing test",
               "which testgen flag replays a test by id"),
              "use the replay flag of testgen with a test id to rerun one test"),
    InfraFact("testgen:fails", "testgen",
              "failing tests are listed in the file fails.log",
              ("where are failing tests listed",
               "which file lists the failing tests"),
              "failing tests are listed in the file fails.log"),
    InfraFact("testgen:coverage", "testgen",
              "use the cover flag of testgen to collect coverage data",
              ("how do i collect coverage data with testgen",
               "which testgen flag enables coverage"),
              "use the cover flag of testgen to collect coverage data"),
    InfraFact("testgen:waves", "testgen",
              "use the waves flag of testgen to dump signal waveforms",
              ("how do i dump signal waveforms from a test",
               "which testgen flag dumps waveforms"),
              "use the waves flag of testgen to dump signal waveforms"),
    InfraFact("testgen:timeout", "testgen",
              "each generated test stops after a ten minute timeout",
              ("when does a generated test stop",
               "what is the timeout of a generated test"),
              "each generated test stops after a ten minute timeout"),
)

FACT_BY_KEY: Dict[str, InfraFact] = {f.key: f for f in FACTS}

#: Follow-up pairs for the multi-turn setting: (first fact, follow-up fact,
#: follow-up question).  The follow-up question leans on the first turn's
#: topic, so answering it requires carrying conversational state.
MULTI_TURN_PAIRS: Tuple[Tuple[str, str, str], ...] = (
    ("arch:clusters", "arch:cores", "and how many cores does each of those clusters hold"),
    ("arch:noc", "arch:l2", "and how large is the l2 cache per cluster"),
    ("arch:ddr", "arch:dma", "and which block moves data between memory and devices"),
    ("arch:bootrom", "arch:debug", "and what does the debug port expose"),
    ("arch:freq", "arch:power", "and how does the power unit gate the clusters"),
    ("build:build_flag", "build:only_flag", "and how do i build it without its dependencies"),
    ("build:tool", "build:list_flag", "and how do i print every target it knows"),
    ("build:clean_flag", "build:log", "and where is the build log written"),
    ("build:version_flag", "build:retry", "and how do i retry the steps that failed"),
    ("build:jobs_flag", "build:verify_flag", "and how do i check a target without building it"),
    ("lsf:submit", "lsf:queue_flag", "and how do i select the queue for it"),
    ("lsf:status", "lsf:kill", "and how do i stop one of them"),
    ("lsf:short_queue", "lsf:long_queue", "and what is the limit of the long queue"),
    ("lsf:mem_flag", "lsf:priority", "and how do i raise its priority"),
    ("lsf:array", "lsf:output", "and where is the output of each job written"),
    ("testgen:tool", "testgen:count_flag", "and how do i set how many tests it creates"),
    ("testgen:seed_flag", "testgen:focus_flag", "and how do i target one block"),
    ("testgen:results", "testgen:fails", "and which file lists the failing tests"),
    ("testgen:replay_flag", "testgen:waves", "and how do i dump waveforms from it"),
    ("testgen:coverage", "testgen:timeout", "and when does each test stop"),
)


@dataclass(frozen=True)
class IndustrialItem:
    """One evaluation or training item with its chunked context."""

    chunks: Tuple[str, ...]
    question: str
    answer: str
    category: str
    fact_key: str
    variant: int

    @property
    def context(self) -> str:
        return " ".join(f"chunk {i} : {c}" for i, c in enumerate(self.chunks))


@dataclass(frozen=True)
class MultiTurnItem:
    """A two-turn conversation; models are scored on the second answer."""

    chunks: Tuple[str, ...]
    first_question: str
    first_answer: str
    question: str
    answer: str
    category: str
    fact_key: str

    @property
    def context(self) -> str:
        return " ".join(f"chunk {i} : {c}" for i, c in enumerate(self.chunks))


def _chunks_for(fact: InfraFact, extra: Sequence[InfraFact]) -> Tuple[str, ...]:
    """Context chunks: the grounding fact plus same-category distractors."""
    chunks = [fact.sentence]
    chunks.extend(f.sentence for f in extra)
    return tuple(chunks)


def _distractors(fact: InfraFact, n: int = 2) -> List[InfraFact]:
    same = [f for f in FACTS if f.category == fact.category and f.key != fact.key]
    # Deterministic selection keyed by the fact, so items are stable.
    same.sort(key=lambda f: hashlib.sha256((fact.key + f.key).encode()).hexdigest())
    return same[:n]


def _eval_fact_keys() -> frozenset:
    """Deterministic per-category subset of facts used for evaluation.

    The split is by *phrasing*, not by fact (see :func:`eval_questions`):
    every fact appears in DAFT training with its training phrasings, and
    evaluation asks a hash-chosen subset of facts with held-out phrasings —
    matching the paper's setting, where the chip model's DAPT+DAFT corpus
    covers every evaluated topic and the 39 questions are engineers' fresh
    wordings.
    """
    keys: List[str] = []
    for category in CATEGORIES:
        facts = sorted((f.key for f in FACTS if f.category == category),
                       key=lambda k: hashlib.sha256(("industrial:" + k).encode()).hexdigest())
        n_hold = (EVAL_QUOTA[category] + 1) // 2 + 1
        keys.extend(facts[:n_hold])
    return frozenset(keys)


_EVAL_KEYS = _eval_fact_keys()


def _is_eval_fact(fact_key: str) -> bool:
    return fact_key in _EVAL_KEYS


def train_questions(fact: InfraFact) -> List[str]:
    """DAFT phrasings: the fact's base phrasings plus politeness wrappers."""
    return [fact.questions[0], fact.questions[1],
            f"please tell me {fact.questions[0]}",
            f"i want to know {fact.questions[1]}"]


def eval_questions(fact: InfraFact) -> List[str]:
    """Held-out phrasings, never used in DAFT."""
    return [f"can you explain {fact.questions[0]}",
            f"help me understand {fact.questions[1]}"]


def unanswerable_question(fact: InfraFact) -> str:
    """The phrasing reserved for the fact's unanswerable (off-topic-context)
    item, distinct from both training and answerable-eval phrasings."""
    return f"please clarify {fact.questions[0]}"


def all_items() -> List[IndustrialItem]:
    """Every single-turn *training-phrasing* item (all facts)."""
    items: List[IndustrialItem] = []
    for fact in FACTS:
        chunks = _chunks_for(fact, _distractors(fact))
        for variant, q in enumerate(train_questions(fact)):
            items.append(IndustrialItem(chunks, q, fact.answer, fact.category,
                                        fact.key, variant))
    return items


def unanswerable_items() -> List[IndustrialItem]:
    """Items whose chunks are off-topic for the question (golden = refusal).

    The retrieval failure mode of Figure 6: the RAG stage returned chunks
    from an unrelated domain, so the grounding instruction obliges the model
    to admit it cannot answer.  Chunks come from a *different* category than
    the question, which is the detectable signal an aligned model uses.
    """
    items: List[IndustrialItem] = []
    for fact in FACTS:
        other_cat = CATEGORIES[(CATEGORIES.index(fact.category) + 1) % len(CATEGORIES)]
        others = [f for f in FACTS if f.category == other_cat]
        others.sort(key=lambda f: hashlib.sha256((fact.key + f.key).encode()).hexdigest())
        chunks = tuple(f.sentence for f in others[:3])
        items.append(IndustrialItem(chunks, unanswerable_question(fact), REFUSAL,
                                    fact.category, fact.key, variant=99))
    return items


def train_items() -> List[IndustrialItem]:
    """DAFT training items: every fact with its training phrasings."""
    return all_items()


def eval_items() -> List[IndustrialItem]:
    """The 39 single-turn evaluation questions (10/10/10/9 per category).

    Each category's quota mixes answerable items (eval facts asked with
    held-out phrasings) with :data:`UNANSWERABLE_PER_CATEGORY` unanswerable
    ones (Figure 6 scenario).
    """
    pool: List[IndustrialItem] = []
    for fact in FACTS:
        if not _is_eval_fact(fact.key):
            continue
        chunks = _chunks_for(fact, _distractors(fact))
        for variant, q in enumerate(eval_questions(fact)):
            pool.append(IndustrialItem(chunks, q, fact.answer, fact.category,
                                       fact.key, 10 + variant))
    refusals = [it for it in unanswerable_items() if _is_eval_fact(it.fact_key)]
    selected: List[IndustrialItem] = []
    for category in CATEGORIES:
        cands = [it for it in pool if it.category == category]
        cands.sort(key=lambda it: hashlib.sha256(
            f"{it.fact_key}:{it.variant}".encode()).hexdigest())
        refs = [it for it in refusals if it.category == category]
        refs.sort(key=lambda it: hashlib.sha256(
            ("unans:" + it.fact_key).encode()).hexdigest())
        quota = EVAL_QUOTA[category] - UNANSWERABLE_PER_CATEGORY
        if len(cands) < quota or len(refs) < UNANSWERABLE_PER_CATEGORY:
            raise RuntimeError(
                f"not enough held-out {category} items: "
                f"{len(cands)} answerable / {len(refs)} unanswerable"
            )
        selected.extend(cands[:quota])
        selected.extend(refs[:UNANSWERABLE_PER_CATEGORY])
    return selected


def multi_turn_items() -> List[MultiTurnItem]:
    """Two-turn conversations built from :data:`MULTI_TURN_PAIRS`."""
    items: List[MultiTurnItem] = []
    for first_key, second_key, follow_up in MULTI_TURN_PAIRS:
        first = FACT_BY_KEY[first_key]
        second = FACT_BY_KEY[second_key]
        chunks = (first.sentence, second.sentence) + tuple(
            f.sentence for f in _distractors(second, 1))
        items.append(MultiTurnItem(chunks, first.questions[0], first.answer,
                                   follow_up, second.answer, second.category,
                                   second.key))
    return items


def documentation_corpus() -> List[str]:
    """All infrastructure doc sentences (the DAPT corpus and RAG pool)."""
    return [f.sentence for f in FACTS]
