"""Generic grounded-extraction pretraining.

A 70B base model can already answer "find the sentence about X in this
passage and repeat it" — that skill comes from pretraining, long before any
instruction tuning.  The substrate base models need the same capability, and
crucially it must live in the *common ancestor* of the chat and chip
branches: circuitry both fine-tunes inherit (and barely move) survives
weight interpolation, whereas circuitry learned in a single branch is the
first casualty of merging.

This module generates QA-formatted "web text" teaching content-agnostic
lookup-and-copy: contexts are key-value facts over *random words from the
full vocabulary* (so the skill cannot be solved by topic memorisation and
transfers to chip tokens), and the answer is always a verbatim copy of the
relevant context sentence.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from . import corpus, eda_domain, industrial_qa
from .prompting import format_prompt


def _word_pool() -> List[str]:
    """Content words drawn from every corpus, deterministically ordered."""
    texts: List[str] = [f.statement for f in corpus.GENERAL_FACTS]
    texts.extend(eda_domain.all_documentation())
    texts.extend(industrial_qa.documentation_corpus())
    words = sorted({w for t in texts for w in t.split()
                    if w.isalpha() and len(w) > 2})
    return words


#: (statement template, question template) — both take key and value slots.
_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("the value of {k} is {v}", "what is the value of {k}"),
    ("the {k} uses the {v}", "what does the {k} use"),
    ("the {k} belongs to the {v}", "where does the {k} belong"),
)


def extraction_pretraining_samples(n_samples: int = 300, seed: int = 17,
                                   n_context: int = 3,
                                   refusal_fraction: float = 0.0) -> List[str]:
    """QA-formatted documents teaching generic copy-from-context.

    Returned as plain text (prompt + answer in one string) for language-model
    pretraining; half the contexts use the chunked format.  With a positive
    ``refusal_fraction``, that share of samples asks about a key absent from
    the context and answers with the canonical refusal — teaching the
    content-agnostic "admit missing information" behaviour of Figure 6.
    """
    from .prompting import REFUSAL

    if n_context < 2:
        raise ValueError("need at least two context facts per sample")
    if not 0.0 <= refusal_fraction <= 1.0:
        raise ValueError("refusal_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    pool = _word_pool()
    samples: List[str] = []
    for sample_idx in range(n_samples):
        pattern_idx = int(rng.integers(len(_PATTERNS)))
        stmt_tpl, q_tpl = _PATTERNS[pattern_idx]
        keys = rng.choice(len(pool), size=n_context + 1, replace=False)
        statements = []
        for k in keys[:n_context]:
            v = pool[int(rng.integers(len(pool)))]
            statements.append(stmt_tpl.format(k=pool[int(k)], v=v))
        if rng.random() < refusal_fraction:
            # Ask about the held-out key: the context cannot answer it.
            question = q_tpl.format(k=pool[int(keys[n_context])])
            answer = REFUSAL
        else:
            target = int(rng.integers(n_context))
            question = q_tpl.format(k=pool[int(keys[target])])
            answer = statements[target]
        if sample_idx % 2 == 0:
            context = " . ".join(statements)
        else:
            context = " ".join(f"chunk {i} : {s}" for i, s in enumerate(statements))
        prompt = format_prompt(question, context=context)
        samples.append(f"{prompt} {answer}")
    return samples


def extraction_eval_samples(n_samples: int = 40, seed: int = 999,
                            n_context: int = 3) -> List[Tuple[str, str]]:
    """Held-out ``(prompt, golden answer)`` pairs for probing the skill."""
    texts = extraction_pretraining_samples(n_samples, seed=seed, n_context=n_context)
    pairs: List[Tuple[str, str]] = []
    for text in texts:
        prompt, _, answer = text.partition(" assistant : ")
        pairs.append((prompt + " assistant :", answer))
    return pairs
