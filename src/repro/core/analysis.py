"""Weight-space diagnostics used by the ablation benchmarks.

These utilities quantify the geometry the paper's argument rests on: the
angles between the two models' weights on the sphere, their norm ratios, and
the difference between interpolating along the geodesic versus the straight
chord (linear interpolation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .geodesic import (frobenius_norm, geodesic_merge, project_to_sphere,
                       sphere_angle)
from .merge import StateDict, validate_conformable


@dataclass(frozen=True)
class TensorGeometry:
    """Geometry of one weight tensor pair."""

    name: str
    angle: float          # radians between sphere projections
    norm_chip: float
    norm_instruct: float

    @property
    def norm_ratio(self) -> float:
        return self.norm_chip / self.norm_instruct


def pairwise_geometry(chip: StateDict, instruct: StateDict) -> List[TensorGeometry]:
    """Per-tensor angles and norms for a model pair."""
    validate_conformable(chip, instruct)
    rows: List[TensorGeometry] = []
    for key in chip:
        a, norm_a = project_to_sphere(chip[key])
        b, norm_b = project_to_sphere(instruct[key])
        rows.append(TensorGeometry(key, sphere_angle(a, b), norm_a, norm_b))
    return rows


def summarize_geometry(chip: StateDict, instruct: StateDict) -> Dict[str, float]:
    """Aggregate angle/norm statistics across all tensors."""
    rows = pairwise_geometry(chip, instruct)
    angles = np.array([r.angle for r in rows])
    ratios = np.array([r.norm_ratio for r in rows])
    return {
        "n_tensors": float(len(rows)),
        "angle_mean": float(angles.mean()),
        "angle_max": float(angles.max()),
        "angle_min": float(angles.min()),
        "norm_ratio_mean": float(ratios.mean()),
        "norm_ratio_max": float(ratios.max()),
    }


def linear_merge_tensor(w_chip: np.ndarray, w_instruct: np.ndarray, lam: float) -> np.ndarray:
    """Plain linear (chord) interpolation — the comparison point for ablations."""
    return lam * np.asarray(w_chip, dtype=np.float64) + (1.0 - lam) * np.asarray(w_instruct, dtype=np.float64)


def norm_deviation_along_path(w_chip: np.ndarray, w_instruct: np.ndarray,
                              lams: np.ndarray, path: str = "geodesic") -> np.ndarray:
    """How far the interpolated tensor's Frobenius norm drifts from the
    geometric-mean target along the path.

    For the geodesic path this deviation is exactly zero by construction; for
    the linear path the norm sags toward the chord's midpoint — the geometric
    defect the paper's method removes.  Returns the relative deviation per λ.
    """
    if path not in ("geodesic", "linear"):
        raise ValueError(f"path must be 'geodesic' or 'linear', got {path!r}")
    norm_chip = frobenius_norm(w_chip)
    norm_instruct = frobenius_norm(w_instruct)
    deviations = []
    for lam in lams:
        target = norm_chip ** lam * norm_instruct ** (1 - lam)
        if path == "geodesic":
            merged = geodesic_merge(w_chip, w_instruct, float(lam))
        else:
            merged = linear_merge_tensor(w_chip, w_instruct, float(lam))
        deviations.append(abs(frobenius_norm(merged) - target) / target)
    return np.asarray(deviations)


def interpolation_path(chip: StateDict, instruct: StateDict,
                       lams: np.ndarray) -> List[Dict[str, np.ndarray]]:
    """Sample merged state dicts along the geodesic at each λ in ``lams``.

    Projections, norms, and angles are λ-independent, so the whole path is
    one :class:`~repro.core.merge_engine.GeodesicMergeEngine` plan plus a
    cheap coefficient evaluation per λ — not a full merge per point.
    """
    from .merge_engine import GeodesicMergeEngine

    return GeodesicMergeEngine(chip, instruct).sweep([float(lam) for lam in lams])
