"""Baseline model-merging methods the paper compares against (Section II-C).

All methods operate on flat ``{name: array}`` state dicts:

* :func:`model_soup` — uniform / weighted averaging (Wortsman et al., 2022).
* :func:`task_arithmetic` — average of task vectors added back to the base
  (Ilharco et al., 2022).
* :func:`ties_merge` — TIES: trim task vectors to the top-density magnitudes,
  elect a per-entry sign, and disjoint-mean the agreeing entries
  (Yadav et al., 2023).
* :func:`della_merge` — DELLA: magnitude-adaptive stochastic pruning
  (MagPrune) with inverse-probability rescaling, then TIES-style sign
  election and fusion (Deep et al., 2024).
* :func:`dare_merge` — DARE: uniform random drop-and-rescale of task vectors,
  fused linearly or TIES-style (Yu et al., 2024); included as an extension
  baseline beyond the paper's table.

Task-vector methods require the common base model the fine-tunes started
from, matching how the paper's pipelines produce their inputs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

import numpy as np

StateDict = Dict[str, np.ndarray]


def _check_aligned(dicts: Sequence[StateDict]) -> None:
    if not dicts:
        raise ValueError("need at least one state dict")
    keys = set(dicts[0])
    for d in dicts[1:]:
        if set(d) != keys:
            raise KeyError("state dicts have non-matching keys")
    for key in keys:
        shapes = {np.asarray(d[key]).shape for d in dicts}
        if len(shapes) != 1:
            raise ValueError(f"tensor {key!r} has mismatched shapes: {shapes}")


def model_soup(dicts: Sequence[StateDict],
               weights: Optional[Sequence[float]] = None) -> "OrderedDict[str, np.ndarray]":
    """Weighted average of state dicts (uniform by default)."""
    _check_aligned(dicts)
    if weights is None:
        weights = [1.0 / len(dicts)] * len(dicts)
    if len(weights) != len(dicts):
        raise ValueError("weights must align with state dicts")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    weights = [w / total for w in weights]
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for key in dicts[0]:
        out[key] = sum(w * np.asarray(d[key], dtype=np.float64)
                       for w, d in zip(weights, dicts))
    return out


def task_vectors(base: StateDict, tuned: StateDict) -> "OrderedDict[str, np.ndarray]":
    """Per-tensor difference ``tuned - base``."""
    _check_aligned([base, tuned])
    return OrderedDict(
        (k, np.asarray(tuned[k], dtype=np.float64) - np.asarray(base[k], dtype=np.float64))
        for k in base
    )


def task_arithmetic(base: StateDict, tuned: Sequence[StateDict],
                    scaling: Optional[float] = None) -> "OrderedDict[str, np.ndarray]":
    """Task arithmetic: ``base + scaling * Σ task_vectors``.

    ``scaling`` defaults to ``1/len(tuned)``, i.e. averaging the task
    vectors — the standard recommendation when fusing same-base fine-tunes.
    """
    _check_aligned([base, *tuned])
    if scaling is None:
        scaling = 1.0 / len(tuned)
    vectors = [task_vectors(base, t) for t in tuned]
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for key in base:
        delta = sum(v[key] for v in vectors)
        out[key] = np.asarray(base[key], dtype=np.float64) + scaling * delta
    return out


def _trim_by_magnitude(vec: np.ndarray, density: float) -> np.ndarray:
    """Zero all but the top-``density`` fraction of entries by |magnitude|."""
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    flat = np.abs(vec).reshape(-1)
    k = max(1, int(round(density * flat.size)))
    if k >= flat.size:
        return vec.copy()
    threshold = np.partition(flat, flat.size - k)[flat.size - k]
    mask = np.abs(vec) >= threshold
    return np.where(mask, vec, 0.0)


def _elect_sign(vectors: List[np.ndarray]) -> np.ndarray:
    """Per-entry sign with the larger total magnitude across task vectors."""
    stacked = np.stack(vectors)
    positive = np.where(stacked > 0, stacked, 0.0).sum(axis=0)
    negative = np.where(stacked < 0, -stacked, 0.0).sum(axis=0)
    sign = np.where(positive >= negative, 1.0, -1.0)
    return sign


def _disjoint_mean(vectors: List[np.ndarray], sign: np.ndarray) -> np.ndarray:
    """Mean of entries whose sign matches the elected sign (zeros excluded)."""
    stacked = np.stack(vectors)
    keep = (np.sign(stacked) == sign) & (stacked != 0)
    total = np.where(keep, stacked, 0.0).sum(axis=0)
    counts = keep.sum(axis=0)
    return np.divide(total, counts, out=np.zeros_like(total), where=counts > 0)


def ties_merge(base: StateDict, tuned: Sequence[StateDict], density: float = 0.2,
               scaling: float = 1.0) -> "OrderedDict[str, np.ndarray]":
    """TIES merging: trim → elect sign → disjoint mean → add to base."""
    _check_aligned([base, *tuned])
    vectors = [task_vectors(base, t) for t in tuned]
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for key in base:
        trimmed = [_trim_by_magnitude(v[key], density) for v in vectors]
        sign = _elect_sign(trimmed)
        merged = _disjoint_mean(trimmed, sign)
        out[key] = np.asarray(base[key], dtype=np.float64) + scaling * merged
    return out


def _magprune(vec: np.ndarray, density: float, epsilon: float,
              rng: np.random.Generator) -> np.ndarray:
    """DELLA's magnitude-adaptive stochastic pruning with rescaling.

    Entries are ranked by |magnitude|; keep probabilities vary linearly from
    ``density - epsilon/2`` (smallest) to ``density + epsilon/2`` (largest),
    clipped to (0, 1].  Kept entries are divided by their keep probability so
    the pruned vector is an unbiased estimate of the original.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    flat = vec.reshape(-1)
    n = flat.size
    order = np.argsort(np.abs(flat), kind="stable")  # ascending magnitude
    ranks = np.empty(n, dtype=np.float64)
    ranks[order] = np.arange(n)
    rel = ranks / max(n - 1, 1)  # 0 = smallest, 1 = largest
    probs = np.clip(density - epsilon / 2.0 + epsilon * rel, 1e-6, 1.0)
    keep = rng.random(n) < probs
    pruned = np.where(keep, flat / probs, 0.0)
    return pruned.reshape(vec.shape)


def della_merge(base: StateDict, tuned: Sequence[StateDict], density: float = 0.4,
                epsilon: float = 0.1, scaling: float = 1.0,
                seed: int = 0) -> "OrderedDict[str, np.ndarray]":
    """DELLA merging: MagPrune each task vector, then TIES-style fuse."""
    _check_aligned([base, *tuned])
    rng = np.random.default_rng(seed)
    vectors = [task_vectors(base, t) for t in tuned]
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for key in base:
        pruned = [_magprune(v[key], density, epsilon, rng) for v in vectors]
        sign = _elect_sign(pruned)
        merged = _disjoint_mean(pruned, sign)
        out[key] = np.asarray(base[key], dtype=np.float64) + scaling * merged
    return out


def dare_merge(base: StateDict, tuned: Sequence[StateDict], density: float = 0.5,
               scaling: Optional[float] = None, mode: str = "linear",
               seed: int = 0) -> "OrderedDict[str, np.ndarray]":
    """DARE merging: random drop-and-rescale of task vectors, then fuse.

    ``mode='linear'`` averages the rescaled vectors; ``mode='ties'`` applies
    sign election and disjoint mean instead.
    """
    if mode not in ("linear", "ties"):
        raise ValueError(f"mode must be 'linear' or 'ties', got {mode!r}")
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    _check_aligned([base, *tuned])
    rng = np.random.default_rng(seed)
    if scaling is None:
        scaling = 1.0 / len(tuned) if mode == "linear" else 1.0
    vectors = [task_vectors(base, t) for t in tuned]
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for key in base:
        dropped = []
        for v in vectors:
            keep = rng.random(v[key].shape) < density
            dropped.append(np.where(keep, v[key] / density, 0.0))
        if mode == "linear":
            merged = sum(dropped)
        else:
            sign = _elect_sign(dropped)
            merged = _disjoint_mean(dropped, sign)
        out[key] = np.asarray(base[key], dtype=np.float64) + scaling * merged
    return out
