"""Model-level ChipAlign merging over state dicts.

The paper merges *every* weight tensor of the two input models — embeddings,
normalisation, attention, and feed-forward layers — with the same geodesic
interpolation and a single hyperparameter λ.  This module applies the
geodesic merge across a pair of state dicts (routing through
:class:`~repro.core.merge_engine.GeodesicMergeEngine`, whose single-λ
evaluation is numerically equivalent to per-tensor
:func:`repro.core.geodesic.geodesic_merge`) and offers a convenience
wrapper that produces a merged :class:`~repro.nn.transformer.TransformerLM`.
When several λ points are needed for the *same* model pair, build one
engine and reuse it — the sphere projections and angles are computed once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..nn.transformer import TransformerLM

StateDict = Dict[str, np.ndarray]


def validate_conformable(chip: StateDict, instruct: StateDict) -> None:
    """Raise if the two state dicts cannot be merged (paper's conformability assumption)."""
    missing = sorted(set(chip) ^ set(instruct))
    if missing:
        raise KeyError(f"state dicts have non-matching keys: {missing}")
    for key in chip:
        a, b = np.asarray(chip[key]), np.asarray(instruct[key])
        if a.shape != b.shape:
            raise ValueError(
                f"tensor {key!r} has mismatched shapes: {a.shape} vs {b.shape}"
            )


def merge_state_dicts(chip: StateDict, instruct: StateDict, lam: float = 0.6,
                      exclude: Sequence[str] = ()) -> "OrderedDict[str, np.ndarray]":
    """Merge two conformable state dicts with geodesic interpolation.

    Parameters
    ----------
    chip, instruct:
        State dicts of the chip-domain and instruction-aligned models; must
        have identical keys and shapes.
    lam:
        ChipAlign's single hyperparameter; 1 → chip weights, 0 → instruct
        weights; the paper recommends 0.6.
    exclude:
        Optional fnmatch-style patterns; matching tensors are copied from the
        chip model unmerged (useful for ablations — the paper itself merges
        everything).
    """
    from .merge_engine import GeodesicMergeEngine

    return GeodesicMergeEngine(chip, instruct, exclude=exclude).merge(lam)


@dataclass(frozen=True)
class ChipAlignMerger:
    """Configured ChipAlign merge, usable on state dicts or whole models.

    Example
    -------
    >>> merger = ChipAlignMerger(lam=0.6)
    >>> merged_model = merger.merge_models(chip_model, instruct_model)
    """

    lam: float = 0.6
    exclude: Sequence[str] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {self.lam}")

    def merge(self, chip: StateDict, instruct: StateDict) -> "OrderedDict[str, np.ndarray]":
        """Merge two state dicts."""
        return merge_state_dicts(chip, instruct, self.lam, self.exclude)

    def merge_models(self, chip_model: TransformerLM,
                     instruct_model: TransformerLM) -> TransformerLM:
        """Merge two models of identical architecture into a fresh model."""
        if chip_model.config != instruct_model.config:
            raise ValueError(
                "models must share an architecture: "
                f"{chip_model.config} vs {instruct_model.config}"
            )
        merged = TransformerLM(chip_model.config)
        merged.load_state_dict(self.merge(chip_model.state_dict(),
                                          instruct_model.state_dict()))
        merged.eval()
        return merged
