"""Registry of merge methods keyed by the names used in the paper's Table 1.

Every method is exposed through a single uniform signature::

    merged = merge(name, chip=chip_sd, instruct=instruct_sd, base=base_sd, **kwargs)

so the benchmark harness can sweep methods by name.  Task-vector methods
(TA, TIES, DELLA, DARE) require ``base``; ChipAlign and Model Soup do not.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from . import baselines
from .merge import StateDict, merge_state_dicts

MergeFn = Callable[..., Dict[str, np.ndarray]]

_REGISTRY: Dict[str, MergeFn] = {}


def register(name: str) -> Callable[[MergeFn], MergeFn]:
    """Decorator adding a merge function to the registry."""

    def inner(fn: MergeFn) -> MergeFn:
        key = name.lower()
        if key in _REGISTRY:
            raise KeyError(f"merge method {name!r} already registered")
        _REGISTRY[key] = fn
        return fn

    return inner


def available_methods() -> List[str]:
    """Names of all registered merge methods."""
    return sorted(_REGISTRY)


def merge(name: str, chip: StateDict, instruct: StateDict,
          base: Optional[StateDict] = None, **kwargs) -> Dict[str, np.ndarray]:
    """Run the merge method ``name`` on a chip/instruct model pair.

    Raises ``KeyError`` for unknown methods and ``ValueError`` when a
    task-vector method is called without ``base``.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown merge method {name!r}; available: {available_methods()}")
    return _REGISTRY[key](chip=chip, instruct=instruct, base=base, **kwargs)


def _require_base(base: Optional[StateDict], method: str) -> StateDict:
    if base is None:
        raise ValueError(f"{method} requires the common base model's state dict")
    return base


@register("chipalign")
def _chipalign(chip: StateDict, instruct: StateDict, base: Optional[StateDict] = None,
               lam: float = 0.6, **_) -> Dict[str, np.ndarray]:
    """ChipAlign geodesic merge; ``base`` is accepted and ignored."""
    return merge_state_dicts(chip, instruct, lam=lam)


@register("modelsoup")
def _soup(chip: StateDict, instruct: StateDict, base: Optional[StateDict] = None,
          weights=None, **_) -> Dict[str, np.ndarray]:
    """Model Soup uniform (or weighted) average of the two models."""
    return baselines.model_soup([chip, instruct], weights=weights)


@register("ta")
def _task_arithmetic(chip: StateDict, instruct: StateDict,
                     base: Optional[StateDict] = None,
                     scaling: Optional[float] = None, **_) -> Dict[str, np.ndarray]:
    """Task arithmetic over the chip and instruct task vectors."""
    return baselines.task_arithmetic(_require_base(base, "task arithmetic"),
                                     [chip, instruct], scaling=scaling)


@register("ties")
def _ties(chip: StateDict, instruct: StateDict, base: Optional[StateDict] = None,
          density: float = 0.2, scaling: float = 1.0, **_) -> Dict[str, np.ndarray]:
    """TIES merging with the publication's recommended density."""
    return baselines.ties_merge(_require_base(base, "TIES"), [chip, instruct],
                                density=density, scaling=scaling)


@register("della")
def _della(chip: StateDict, instruct: StateDict, base: Optional[StateDict] = None,
           density: float = 0.4, epsilon: float = 0.1, scaling: float = 1.0,
           seed: int = 0, **_) -> Dict[str, np.ndarray]:
    """DELLA merging with magnitude-adaptive pruning."""
    return baselines.della_merge(_require_base(base, "DELLA"), [chip, instruct],
                                 density=density, epsilon=epsilon,
                                 scaling=scaling, seed=seed)


@register("dare")
def _dare(chip: StateDict, instruct: StateDict, base: Optional[StateDict] = None,
          density: float = 0.5, mode: str = "linear", seed: int = 0,
          **_) -> Dict[str, np.ndarray]:
    """DARE drop-and-rescale merging (extension baseline)."""
    return baselines.dare_merge(_require_base(base, "DARE"), [chip, instruct],
                                density=density, mode=mode, seed=seed)
