"""Layer-wise λ schedules for ChipAlign.

The paper uses one global λ; a natural ablation (and a practical knob for
adopters) is letting λ vary across the depth of the network — e.g. keeping
early layers closer to the chip model (domain features live early) and late
layers closer to the instruction model (output style lives late), or vice
versa.  A :class:`LambdaSchedule` maps parameter names to λ values; the
merge falls back to the global default for non-layer tensors (embeddings,
final norm, head).
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .merge import StateDict

_LAYER_PATTERN = re.compile(r"\bblocks\.(\d+)\.")


def layer_index(param_name: str) -> Optional[int]:
    """The transformer block index a parameter belongs to, or None."""
    match = _LAYER_PATTERN.search(param_name)
    return int(match.group(1)) if match else None


class LambdaSchedule:
    """λ as a function of layer depth.

    Parameters
    ----------
    fn:
        Maps the *relative depth* in [0, 1] (0 = first block, 1 = last) to a
        λ in [0, 1].
    n_layers:
        Total number of transformer blocks in the models being merged.
    default:
        λ for parameters outside any block (embeddings, final norm, head).
    """

    def __init__(self, fn: Callable[[float], float], n_layers: int,
                 default: float = 0.6) -> None:
        if n_layers <= 0:
            raise ValueError("n_layers must be positive")
        if not 0.0 <= default <= 1.0:
            raise ValueError("default lambda must be in [0, 1]")
        self.fn = fn
        self.n_layers = n_layers
        self.default = default

    def lam_for(self, param_name: str) -> float:
        index = layer_index(param_name)
        if index is None:
            return self.default
        depth = index / max(self.n_layers - 1, 1)
        lam = float(self.fn(depth))
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"schedule produced lambda {lam} outside [0, 1]")
        return lam

    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, lam: float, n_layers: int) -> "LambdaSchedule":
        """The paper's setting: one λ everywhere."""
        return cls(lambda _: lam, n_layers, default=lam)

    @classmethod
    def linear(cls, start: float, stop: float, n_layers: int,
               default: float = 0.6) -> "LambdaSchedule":
        """λ interpolates linearly from ``start`` (first block) to ``stop``."""
        return cls(lambda d: start + (stop - start) * d, n_layers, default)

    def freeze(self) -> "LambdaTable":
        """Snapshot into a picklable per-layer λ table.

        ``fn`` is an arbitrary closure (the :meth:`constant` / :meth:`linear`
        builders use lambdas), so a schedule cannot cross a process border —
        but its *values* can.  The table is built by calling :meth:`lam_for`
        once per block, so lookups through the frozen copy agree with this
        schedule bit-for-bit.
        """
        return LambdaTable(
            lams=tuple(self.lam_for(f"blocks.{i}.") for i in range(self.n_layers)),
            default=self.default)


@dataclass(frozen=True)
class LambdaTable:
    """A closed-form, picklable λ schedule: one λ per transformer block.

    Duck-type-compatible with :class:`LambdaSchedule` (same ``lam_for``
    surface), so anything that consumes a schedule — including
    :meth:`~repro.core.merge_engine.GeodesicMergeEngine.merge_layerwise` —
    accepts a table.  This is what a λ-fleet ships to replica processes.
    """

    lams: Tuple[float, ...]
    default: float = 0.6

    def __post_init__(self) -> None:
        if not self.lams:
            raise ValueError("LambdaTable needs at least one layer lambda")
        for lam in (self.default, *self.lams):
            if not 0.0 <= float(lam) <= 1.0:
                raise ValueError(f"lambda {lam} outside [0, 1]")

    @property
    def n_layers(self) -> int:
        return len(self.lams)

    def lam_for(self, param_name: str) -> float:
        index = layer_index(param_name)
        if index is None:
            return self.default
        if index >= len(self.lams):
            raise ValueError(
                f"parameter {param_name!r} names block {index} but the table "
                f"covers {len(self.lams)} blocks")
        return self.lams[index]


def merge_state_dicts_layerwise(chip: StateDict, instruct: StateDict,
                                schedule: LambdaSchedule,
                                ) -> "OrderedDict[str, np.ndarray]":
    """Geodesic merge with a per-layer λ schedule.

    Routes through :class:`~repro.core.merge_engine.GeodesicMergeEngine`; to
    evaluate several schedules on one model pair, build the engine once and
    call :meth:`~repro.core.merge_engine.GeodesicMergeEngine.merge_layerwise`
    per schedule.
    """
    from .merge_engine import GeodesicMergeEngine

    return GeodesicMergeEngine(chip, instruct).merge_layerwise(schedule)
