"""ChipAlign's core contribution: geodesic weight merging and baselines."""

from .geodesic import (frobenius_norm, geodesic_distance, geodesic_merge,
                       project_to_sphere, restore_norm, slerp, sphere_angle)
from .merge import ChipAlignMerger, merge_state_dicts, validate_conformable
from .merge_engine import GeodesicMergeEngine, MergePlan, TensorPlan
from .baselines import (dare_merge, della_merge, model_soup, task_arithmetic,
                        task_vectors, ties_merge)
from .registry import available_methods, merge, register
from .analysis import (TensorGeometry, interpolation_path, linear_merge_tensor,
                       norm_deviation_along_path, pairwise_geometry,
                       summarize_geometry)
from .karcher import (exp_map, karcher_mean, karcher_merge_state_dicts,
                      karcher_merge_tensors, log_map)
from .layerwise import (LambdaSchedule, layer_index,
                        merge_state_dicts_layerwise)

__all__ = [
    "frobenius_norm", "geodesic_distance", "geodesic_merge",
    "project_to_sphere", "restore_norm", "slerp", "sphere_angle",
    "ChipAlignMerger", "merge_state_dicts", "validate_conformable",
    "GeodesicMergeEngine", "MergePlan", "TensorPlan",
    "dare_merge", "della_merge", "model_soup", "task_arithmetic",
    "task_vectors", "ties_merge",
    "available_methods", "merge", "register",
    "TensorGeometry", "interpolation_path", "linear_merge_tensor",
    "norm_deviation_along_path", "pairwise_geometry", "summarize_geometry",
    "exp_map", "karcher_mean", "karcher_merge_state_dicts",
    "karcher_merge_tensors", "log_map",
    "LambdaSchedule", "layer_index", "merge_state_dicts_layerwise",
]
