"""Geodesic interpolation on the unit n-sphere — the heart of ChipAlign.

Implements Section III of the paper exactly:

1. Project each weight matrix onto the unit n-sphere by dividing by its
   Frobenius norm (Definition III.1).
2. Interpolate along the geodesic (great-circle arc) between the two projected
   points using the spherical linear interpolation formula (Lemma III.2):

   .. math::

      \\bar W_{merge} = \\frac{\\sin(\\lambda\\Theta)}{\\sin\\Theta}\\bar W_{chip}
                      + \\frac{\\sin((1-\\lambda)\\Theta)}{\\sin\\Theta}\\bar W_{instruct}

   where :math:`\\Theta` is the angle between the projected weights and
   :math:`\\lambda \\in [0, 1]`, with :math:`\\lambda=1` recovering the chip
   model and :math:`\\lambda=0` the instruction model.
3. Restore magnitude with the geometric mean of the original Frobenius norms:
   :math:`W_{merge} = \\mathrm{Norm}_{chip}^{\\lambda}\\,
   \\mathrm{Norm}_{instruct}^{1-\\lambda}\\,\\bar W_{merge}`.

Numerical edge cases (near-parallel or near-antipodal weights, zero matrices)
are handled explicitly; see the individual functions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

# Below this angle the sin(Θ) denominator is numerically unstable and the
# chord is indistinguishable from the arc, so we fall back to normalised
# linear interpolation.
SMALL_ANGLE = 1e-7
# Within this distance of π the geodesic is not unique (antipodal points).
ANTIPODAL_MARGIN = 1e-6


def frobenius_norm(w: np.ndarray) -> float:
    """Frobenius norm of an arbitrary-shape weight array."""
    return float(np.sqrt(np.sum(np.asarray(w, dtype=np.float64) ** 2)))


def project_to_sphere(w: np.ndarray) -> Tuple[np.ndarray, float]:
    """Project ``w`` onto the unit n-sphere.

    Returns ``(w / ||w||_F, ||w||_F)``.  A zero matrix cannot be projected
    and raises ``ValueError`` — the caller (the model-level merger) treats
    all-zero tensors specially.
    """
    w = np.asarray(w, dtype=np.float64)
    norm = frobenius_norm(w)
    if norm == 0.0:
        raise ValueError("cannot project the zero matrix onto the unit sphere")
    return w / norm, norm


def sphere_angle(w_a: np.ndarray, w_b: np.ndarray) -> float:
    """Angle Θ ∈ [0, π] between two unit-norm weight arrays.

    The inputs are treated as flattened vectors on the n-sphere
    (n = w.size - 1); the angle is ``arccos`` of their inner product,
    clipped into [-1, 1] for numerical safety.
    """
    dot = float(np.sum(np.asarray(w_a, dtype=np.float64) * np.asarray(w_b, dtype=np.float64)))
    return float(np.arccos(np.clip(dot, -1.0, 1.0)))


def slerp(w_chip: np.ndarray, w_instruct: np.ndarray, lam: float) -> np.ndarray:
    """Spherical linear interpolation between two unit-norm arrays.

    Parameters
    ----------
    w_chip, w_instruct:
        Unit-Frobenius-norm arrays of identical shape (points on the sphere).
    lam:
        Interpolation coefficient in [0, 1]; 1 → chip, 0 → instruct
        (Lemma III.2's convention).

    Returns
    -------
    numpy.ndarray
        A unit-norm array on the geodesic between the inputs.

    Notes
    -----
    * For nearly parallel inputs (Θ < :data:`SMALL_ANGLE`) the formula's
      ``sin(Θ)`` denominator degenerates; we use normalised linear
      interpolation, which coincides with the geodesic in the limit.
    * Antipodal inputs (Θ ≈ π) have no unique geodesic; ``ValueError`` is
      raised because any choice would be arbitrary.  This never occurs for
      fine-tunes of a common base in practice.
    """
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"lambda must be in [0, 1], got {lam}")
    w_chip = np.asarray(w_chip, dtype=np.float64)
    w_instruct = np.asarray(w_instruct, dtype=np.float64)
    if w_chip.shape != w_instruct.shape:
        raise ValueError(f"shape mismatch: {w_chip.shape} vs {w_instruct.shape}")
    theta = sphere_angle(w_chip, w_instruct)
    if theta < SMALL_ANGLE:
        blended = lam * w_chip + (1.0 - lam) * w_instruct
        norm = frobenius_norm(blended)
        return blended / norm if norm > 0 else w_chip.copy()
    if np.pi - theta < ANTIPODAL_MARGIN:
        raise ValueError(
            "inputs are (numerically) antipodal on the sphere; the geodesic "
            "between them is not unique"
        )
    sin_theta = np.sin(theta)
    coeff_chip = np.sin(lam * theta) / sin_theta
    coeff_instruct = np.sin((1.0 - lam) * theta) / sin_theta
    return coeff_chip * w_chip + coeff_instruct * w_instruct


def restore_norm(w_unit: np.ndarray, norm_chip: float, norm_instruct: float,
                 lam: float) -> np.ndarray:
    """Rescale a unit-norm merged array by the geometric mean of source norms.

    Implements :math:`W = \\mathrm{Norm}_{chip}^{\\lambda}
    \\mathrm{Norm}_{instruct}^{1-\\lambda} \\bar W`.
    """
    if norm_chip <= 0 or norm_instruct <= 0:
        raise ValueError("norms must be positive to take a geometric mean")
    return (norm_chip ** lam) * (norm_instruct ** (1.0 - lam)) * np.asarray(w_unit)


def geodesic_merge(w_chip: np.ndarray, w_instruct: np.ndarray, lam: float = 0.6) -> np.ndarray:
    """Full per-tensor ChipAlign merge: project → slerp → restore norm.

    This is ``f(W_chip, W_instruct)`` from the paper's problem formulation,
    applied to a single weight matrix.  λ defaults to the paper's recommended
    0.6 (Section IV-E).

    Degenerate inputs: if both tensors are zero the result is zero; if
    exactly one is zero, spherical projection is undefined and we fall back
    to the plain linear blend ``lam * w_chip + (1 - lam) * w_instruct``.
    This blend is a *pragmatic* choice, **not** the continuous extension of
    the formula: the geometric-mean rescale
    :math:`\\mathrm{Norm}_{chip}^{\\lambda}\\mathrm{Norm}_{instruct}^{1-\\lambda}`
    vanishes as either norm → 0 (for λ in the open interval), so the
    formula's limit is the zero tensor — which would silently discard the
    surviving model's weights.  The blend instead keeps a useful
    interpolation toward the non-zero input; tests pin both behaviours.
    """
    w_chip = np.asarray(w_chip, dtype=np.float64)
    w_instruct = np.asarray(w_instruct, dtype=np.float64)
    if w_chip.shape != w_instruct.shape:
        raise ValueError(f"shape mismatch: {w_chip.shape} vs {w_instruct.shape}")
    norm_chip = frobenius_norm(w_chip)
    norm_instruct = frobenius_norm(w_instruct)
    if norm_chip == 0.0 and norm_instruct == 0.0:
        return np.zeros_like(w_chip)
    if norm_chip == 0.0 or norm_instruct == 0.0:
        return lam * w_chip + (1.0 - lam) * w_instruct
    unit_merged = slerp(w_chip / norm_chip, w_instruct / norm_instruct, lam)
    return restore_norm(unit_merged, norm_chip, norm_instruct, lam)


def geodesic_distance(w_a: np.ndarray, w_b: np.ndarray) -> float:
    """Arc length between the sphere projections of two weight arrays."""
    unit_a, _ = project_to_sphere(w_a)
    unit_b, _ = project_to_sphere(w_b)
    return sphere_angle(unit_a, unit_b)
