"""Incremental λ-sweep merge engine.

The naive model-level merge (:func:`repro.core.merge.merge_state_dicts`)
re-does the *whole* geodesic computation for every λ: float64 conversion,
two Frobenius norms, two sphere projections, the inner product, and the
arccos — per tensor, per λ.  But every one of those quantities is
**λ-independent**: only the two scalar coefficients

.. math::

   \\frac{\\sin(\\lambda\\Theta)}{\\sin\\Theta} \\quad\\text{and}\\quad
   \\frac{\\sin((1-\\lambda)\\Theta)}{\\sin\\Theta}

and the geometric-mean rescale :math:`\\mathrm{Norm}_{chip}^{\\lambda}
\\mathrm{Norm}_{instruct}^{1-\\lambda}` change with λ.

:class:`GeodesicMergeEngine` therefore factors the merge into two phases:

1. **plan** (once per model pair): record each tensor pair's norms and
   angle Θ and stack the two raw tensors into one float64 ``(2, n)`` row
   matrix per tensor (:class:`MergePlan`) — the unit projections are never
   materialised, their ``1/norm`` factors fold into the scalars;
2. **evaluate** (per λ, per schedule, or per sweep): fold the rescale and
   ``1/norm`` into the two slerp coefficients and apply them with a single
   fused ``(1, 2) @ (2, n)`` BLAS multiply-add per tensor — no
   projections, no norms, no angles.

A whole sweep evaluates all L λ points tensor-at-a-time into one
``(L, n)`` row block per tensor.  With ``n_workers > 1`` the plan's
buffers are published once into a shared-memory
:class:`~repro.parallel.TensorArena` and evaluated by a fault-tolerant
:class:`~repro.parallel.WorkerPool` attached to zero-copy views of that
plan — :meth:`GeodesicMergeEngine.sweep` fans out tensors (keeping each
one-pass GEMM intact), :meth:`GeodesicMergeEngine.isweep` fans out λ
points and streams merged models back in λ order.  Serial ``isweep`` can
instead reuse one set of preallocated output buffers across λ points to
cap peak memory at a single merged model.

Numerical contract: evaluation performs the same float64 operations as
:func:`repro.core.geodesic.geodesic_merge` up to re-association of the
scalar rescale (``(s·c₁)·W`` instead of ``s·(c₁·W)``), so results agree
with the naive path to a relative tolerance of ~1e-15 — far inside the
1e-10 the tests pin.  All of :func:`~repro.core.merge.merge_state_dicts`,
:func:`~repro.core.layerwise.merge_state_dicts_layerwise`,
:func:`~repro.core.analysis.interpolation_path`, and
:meth:`~repro.pipelines.model_zoo.ModelZoo.merged` route through this
engine.
"""

from __future__ import annotations

import fnmatch
from collections import OrderedDict
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

import numpy as np

from ..obs import Observability
from .geodesic import ANTIPODAL_MARGIN, SMALL_ANGLE, frobenius_norm

StateDict = Dict[str, np.ndarray]

#: Tensor-pair categories a plan distinguishes (see ``geodesic_merge``).
KIND_SLERP = "slerp"          # regular geodesic interpolation
KIND_PARALLEL = "parallel"    # Θ < SMALL_ANGLE: normalised lerp fallback
KIND_LINEAR = "linear"        # exactly one zero tensor: linear blend
KIND_ZERO = "zero"            # both tensors zero
KIND_EXCLUDED = "excluded"    # exclude-pattern match: copy chip verbatim


class TensorPlan:
    """Precomputed, λ-independent geometry of one tensor pair.

    For mergeable kinds the two *raw* tensors are flattened and stacked
    into one ``(2, n)`` float64 matrix; the unit projections are never
    materialised — the ``1/norm`` factors fold into the per-λ scalar
    coefficients, so any λ evaluates as a single fused multiply-add:
    ``coeffs @ stacked``.
    """

    __slots__ = ("key", "kind", "shape", "stacked", "norm_chip",
                 "norm_instruct", "theta", "sin_theta", "raw_chip")

    def __init__(self, key: str, kind: str, shape: Tuple[int, ...],
                 stacked: Optional[np.ndarray] = None,
                 norm_chip: float = 0.0, norm_instruct: float = 0.0,
                 theta: float = 0.0, sin_theta: float = 0.0,
                 raw_chip: Optional[np.ndarray] = None) -> None:
        self.key = key
        self.kind = kind
        self.shape = shape
        self.stacked = stacked
        self.norm_chip = norm_chip
        self.norm_instruct = norm_instruct
        self.theta = theta
        self.sin_theta = sin_theta
        self.raw_chip = raw_chip

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def stacked64(self) -> Optional[np.ndarray]:
        """The stacked rows as float64.

        No-copy when the plan already holds float64; an arena-resident
        *compact* plan (see :meth:`MergePlan.publish`) stores rows as
        float32 where that downcast is lossless, and the upcast here
        reproduces the original float64 bits exactly — evaluation stays
        bit-identical however the rows were stored.
        """
        if self.stacked is None or self.stacked.dtype == np.float64:
            return self.stacked
        return np.asarray(self.stacked, dtype=np.float64)

    # ------------------------------------------------------------------
    def coefficients(self, lam: float) -> Tuple[float, float]:
        """The two λ-dependent scalars, with the geometric-mean rescale
        folded in (``KIND_SLERP`` / ``KIND_LINEAR`` only)."""
        if self.kind == KIND_LINEAR:
            return lam, 1.0 - lam
        scale = self.norm_chip ** lam * self.norm_instruct ** (1.0 - lam)
        coeff_chip = np.sin(lam * self.theta) / self.sin_theta
        coeff_instruct = np.sin((1.0 - lam) * self.theta) / self.sin_theta
        # stacked holds the raw tensors; the sphere projection's 1/norm
        # rides along in the scalars instead of a (2, n)-sized division.
        return (scale * coeff_chip / self.norm_chip,
                scale * coeff_instruct / self.norm_instruct)

    def evaluate(self, lam: float, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Merged tensor at ``lam``; writes into ``out`` when provided."""
        if self.kind in (KIND_SLERP, KIND_LINEAR):
            coeffs = np.asarray(self.coefficients(lam), dtype=np.float64)
            if (out is not None and out.dtype == np.float64
                    and out.flags.c_contiguous):
                np.dot(coeffs, self.stacked64, out=out.reshape(-1))
                return out
            result = np.dot(coeffs, self.stacked64).reshape(self.shape)
        elif self.kind == KIND_EXCLUDED:
            result = np.array(self.raw_chip, copy=True)
        elif self.kind == KIND_ZERO:
            result = np.zeros(self.shape, dtype=np.float64)
        else:
            result = self._evaluate_parallel(lam)
        if out is None:
            return result
        out[...] = result
        return out

    def _evaluate_parallel(self, lam: float) -> np.ndarray:
        """Θ ≈ 0 fallback: normalised linear interpolation, then rescale —
        the same math ``slerp`` + ``restore_norm`` use."""
        stacked = self.stacked64
        blended = np.dot((lam / self.norm_chip, (1.0 - lam) / self.norm_instruct),
                         stacked)
        norm = frobenius_norm(blended)
        scale = self.norm_chip ** lam * self.norm_instruct ** (1.0 - lam)
        if norm > 0:
            return (scale / norm * blended).reshape(self.shape)
        return (scale / self.norm_chip * stacked[0]).reshape(self.shape)

    def coefficient_matrix(self, lams: np.ndarray) -> np.ndarray:
        """The ``(L, 2)`` coefficient rows for a whole sweep at once
        (``KIND_SLERP`` / ``KIND_LINEAR`` only).

        Rows are computed λ-at-a-time with the scalar :meth:`coefficients`
        path rather than vectorised ufuncs: numpy's SIMD ``sin``/``pow``
        loops pick different code paths for different array lengths and
        drift by an ULP, which would make a sweep's bits depend on how its
        λ points were blocked across workers.  The scalars are O(L) against
        an O(L·n) GEMM, so the cost is noise.
        """
        lams = np.asarray(lams, dtype=np.float64)
        if self.kind == KIND_LINEAR:
            return np.stack([lams, 1.0 - lams], axis=1)
        return np.asarray([self.coefficients(float(lam)) for lam in lams],
                          dtype=np.float64)

    def evaluate_sweep(self, lams: np.ndarray) -> np.ndarray:
        """All sweep points as an ``(L, n)`` matrix.

        One ``(L, 2) @ (2, n)`` GEMM per tensor — the unit projections are
        streamed through memory *once* for the whole sweep instead of once
        per λ, which is what makes a sweep cheaper than L single merges on
        a bandwidth-bound machine.
        """
        n_points = len(lams)
        if self.kind == KIND_EXCLUDED:
            flat = np.asarray(self.raw_chip, dtype=np.float64).reshape(-1)
            return np.tile(flat, (n_points, 1))
        if self.kind == KIND_ZERO:
            return np.zeros((n_points, self.size), dtype=np.float64)
        if self.kind == KIND_PARALLEL:
            return np.stack([self._evaluate_parallel(float(lam)).reshape(-1)
                             for lam in lams])
        return np.dot(self.coefficient_matrix(lams), self.stacked64)


class MergePlan:
    """The λ-independent half of a ChipAlign merge, reusable for any λ."""

    #: Default arena key prefix for :meth:`publish` / :meth:`from_view`.
    ARENA_PREFIX = "plan"

    def __init__(self, tensors: "OrderedDict[str, TensorPlan]") -> None:
        self.tensors = tensors

    def __len__(self) -> int:
        return len(self.tensors)

    def __iter__(self) -> Iterator[TensorPlan]:
        return iter(self.tensors.values())

    @property
    def keys(self) -> List[str]:
        return list(self.tensors)

    @property
    def total_params(self) -> int:
        return sum(plan.size for plan in self)

    def summary(self) -> Dict[str, float]:
        """Plan composition + angle statistics (diagnostics / logging)."""
        angles = [p.theta for p in self if p.kind in (KIND_SLERP, KIND_PARALLEL)]
        kinds: Dict[str, int] = {}
        for plan in self:
            kinds[plan.kind] = kinds.get(plan.kind, 0) + 1
        return {
            "n_tensors": float(len(self)),
            "total_params": float(self.total_params),
            "angle_mean": float(np.mean(angles)) if angles else 0.0,
            "angle_max": float(np.max(angles)) if angles else 0.0,
            **{f"n_{kind}": float(count) for kind, count in sorted(kinds.items())},
        }

    # ------------------------------------------------------------------
    # shared-memory residency: one published plan, any number of readers
    # ------------------------------------------------------------------
    def metas(self) -> List[Tuple]:
        """The λ-independent scalars of every tensor as picklable tuples.

        Together with an arena view of the published buffers this is enough
        to rebuild the plan anywhere (:meth:`from_view`) — the plan crosses
        a process border as a few hundred bytes however large the models.
        """
        return [(plan.key, plan.kind, tuple(plan.shape), plan.norm_chip,
                 plan.norm_instruct, plan.theta, plan.sin_theta,
                 plan.stacked is not None, plan.raw_chip is not None)
                for plan in self]

    def publish(self, arena, prefix: str = ARENA_PREFIX,
                compact: bool = True) -> List[Tuple]:
        """Publish the plan's buffers into a shared-memory arena.

        Everything lands in **one** segment (64-byte-aligned packing via
        :meth:`~repro.parallel.TensorArena.publish_dict`) under
        ``{prefix}.stacked.{key}`` / ``{prefix}.raw.{key}``.  With
        ``compact=True`` each float64 ``(2, n)`` row block is stored as
        float32 when that downcast is verified lossless per tensor — always
        the case when the source models were float32, since float32 →
        float64 conversion is exact — which halves the resident footprint
        to ~2x one float32 model while keeping every evaluation
        bit-identical (readers upcast through
        :attr:`TensorPlan.stacked64`).  Tensors whose rows do not survive
        the round trip stay float64.

        Returns the :meth:`metas` list; ``(arena.handle(), metas)`` is the
        picklable pair :meth:`from_view` (or a pool initializer) rebuilds
        from.
        """
        tensors: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for plan in self:
            if plan.stacked is not None:
                rows = plan.stacked
                if compact and rows.dtype == np.float64:
                    narrow = rows.astype(np.float32)
                    if np.array_equal(narrow.astype(np.float64), rows):
                        rows = narrow
                tensors[f"stacked.{plan.key}"] = rows
            if plan.raw_chip is not None:
                tensors[f"raw.{plan.key}"] = plan.raw_chip
        if tensors:
            arena.publish_dict(prefix, tensors)
        return self.metas()

    @classmethod
    def from_view(cls, view, metas: Iterable[Tuple],
                  prefix: str = ARENA_PREFIX) -> "MergePlan":
        """Rebuild a plan over zero-copy arena views of published buffers.

        The rebuilt plan evaluates bit-identically to the one that was
        published (compact float32 rows upcast exactly; see
        :meth:`publish`).
        """
        tensors: "OrderedDict[str, TensorPlan]" = OrderedDict()
        for (key, kind, shape, norm_chip, norm_instruct, theta, sin_theta,
             has_stacked, has_raw) in metas:
            stacked = view.get(f"{prefix}.stacked.{key}") if has_stacked else None
            raw = view.get(f"{prefix}.raw.{key}") if has_raw else None
            tensors[key] = TensorPlan(key, kind, tuple(shape), stacked=stacked,
                                      norm_chip=norm_chip,
                                      norm_instruct=norm_instruct, theta=theta,
                                      sin_theta=sin_theta, raw_chip=raw)
        return cls(tensors)


def _plan_tensor(key: str, w_chip: np.ndarray, w_instruct: np.ndarray) -> TensorPlan:
    """Classify one tensor pair and precompute its geometry.

    Builds the ``(2, n)`` stacked matrix in place (one float64 conversion
    per tensor, no unit-tensor copies — norms and the angle come from BLAS
    dot products on the raw rows), so planning costs *less* than one naive
    merge.
    """
    chip = np.asarray(w_chip)
    instruct = np.asarray(w_instruct)
    if chip.shape != instruct.shape:
        raise ValueError(f"shape mismatch for {key!r}: {chip.shape} vs {instruct.shape}")
    shape = chip.shape
    stacked = np.empty((2, chip.size), dtype=np.float64)
    stacked[0] = chip.reshape(-1)
    stacked[1] = instruct.reshape(-1)
    norm_chip = float(np.sqrt(np.dot(stacked[0], stacked[0])))
    norm_instruct = float(np.sqrt(np.dot(stacked[1], stacked[1])))
    if norm_chip == 0.0 and norm_instruct == 0.0:
        return TensorPlan(key, KIND_ZERO, shape)
    if norm_chip == 0.0 or norm_instruct == 0.0:
        # One-zero fallback: the pragmatic linear blend (see geodesic_merge's
        # docstring — this is NOT the continuous extension of the formula).
        return TensorPlan(key, KIND_LINEAR, shape, stacked=stacked)
    cosine = float(np.dot(stacked[0], stacked[1])) / (norm_chip * norm_instruct)
    theta = float(np.arccos(np.clip(cosine, -1.0, 1.0)))
    if np.pi - theta < ANTIPODAL_MARGIN:
        raise ValueError(
            f"tensors {key!r} are (numerically) antipodal on the sphere; "
            "the geodesic between them is not unique")
    if theta < SMALL_ANGLE:
        return TensorPlan(key, KIND_PARALLEL, shape, stacked=stacked,
                          norm_chip=norm_chip, norm_instruct=norm_instruct,
                          theta=theta)
    return TensorPlan(key, KIND_SLERP, shape, stacked=stacked,
                      norm_chip=norm_chip, norm_instruct=norm_instruct,
                      theta=theta, sin_theta=float(np.sin(theta)))


# ---------------------------------------------------------------------------
# multiprocessing fan-out: the plan's buffers live in a shared-memory
# TensorArena; workers attach zero-copy views and evaluate λ chunks.
# ---------------------------------------------------------------------------

#: Worker-side plan rebuilt over arena views by :func:`_sweep_worker_init`.
_WORKER_PLAN: Optional[MergePlan] = None
_WORKER_VIEW = None


def _sweep_worker_init(handle, metas) -> None:
    """Pool initializer: attach the arena and rebuild the plan over views.

    ``metas`` carries the λ-independent scalars (kind, shape, norms, Θ);
    the (2, n) stacked buffers and excluded raw tensors are read straight
    out of shared memory — the plan crosses the process border as a few
    hundred bytes however large the models are.
    """
    global _WORKER_PLAN, _WORKER_VIEW
    _WORKER_VIEW = handle.attach()
    _WORKER_PLAN = MergePlan.from_view(_WORKER_VIEW, metas)


def _sweep_tensor_key(key: str) -> np.ndarray:
    """Evaluate one tensor's full λ sweep against the shared plan.

    The sweep's λ points ride the fork-inherited task context rather than
    each task's payload.  Parallelising over *tensors* (not λ blocks) keeps
    every ``(L, n)`` GEMM identical to the serial call — BLAS picks
    different kernels for different row counts (a lone λ row goes through
    GEMV and drifts by an ULP), so splitting L would break bit-parity.
    """
    from ..parallel import get_task_context

    assert _WORKER_PLAN is not None, "worker initializer did not run"
    lams = np.asarray(get_task_context()["sweep_lams"], dtype=np.float64)
    return _WORKER_PLAN.tensors[key].evaluate_sweep(lams)


def _merge_point(lam: float) -> "OrderedDict[str, np.ndarray]":
    """Evaluate one λ against the shared plan: a full merged state dict."""
    assert _WORKER_PLAN is not None, "worker initializer did not run"
    merged: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for plan in _WORKER_PLAN:
        merged[plan.key] = plan.evaluate(float(lam))
    return merged


class GeodesicMergeEngine:
    """Reusable ChipAlign merger for one (chip, instruct) model pair.

    Parameters
    ----------
    chip, instruct:
        Conformable state dicts (same keys, same shapes).
    exclude:
        fnmatch patterns; matching tensors are copied from ``chip`` unmerged
        (mirrors :func:`~repro.core.merge.merge_state_dicts`).
    n_workers:
        Default process fan-out for :meth:`sweep` / :meth:`isweep`.
        ``None``/``1`` keeps everything in-process; >1 publishes the plan
        into a shared-memory arena and forks a worker pool that evaluates
        λ blocks against zero-copy views (worth it only for large state
        dicts — results are pickled back).  Ignored where ``fork`` is
        unavailable.
    obs:
        Shared :class:`~repro.obs.Observability`; planning and every
        evaluation record ``merge.*`` spans and counters (tensors and
        bytes processed) into it.  Private when omitted.

    Notes
    -----
    The plan holds one float64 copy of both models' weights (~2× one
    model's float64 footprint) — the space cost of making every subsequent
    λ evaluation a single fused multiply-add per tensor.
    """

    def __init__(self, chip: StateDict, instruct: StateDict,
                 exclude: Sequence[str] = (),
                 n_workers: Optional[int] = None,
                 obs: Optional[Observability] = None) -> None:
        from .merge import validate_conformable

        validate_conformable(chip, instruct)
        self.exclude = tuple(exclude)
        self.n_workers = n_workers
        self.obs = obs if obs is not None else Observability()
        tensors: "OrderedDict[str, TensorPlan]" = OrderedDict()
        with self.obs.span("merge.plan", tensors=len(chip)):
            for key in chip:
                if any(fnmatch.fnmatch(key, pattern) for pattern in self.exclude):
                    raw = np.asarray(chip[key])
                    tensors[key] = TensorPlan(key, KIND_EXCLUDED, raw.shape,
                                              raw_chip=np.array(raw, copy=True))
                else:
                    tensors[key] = _plan_tensor(key, chip[key], instruct[key])
        self.plan = MergePlan(tensors)
        self._arena = None
        self._arena_metas: Optional[List[Tuple]] = None
        registry = self.obs.registry
        registry.counter("merge.plans").inc()
        registry.counter("merge.tensors_planned").inc(len(tensors))
        registry.counter("merge.params_planned").inc(self.plan.total_params)
        #: Bytes one λ evaluation streams: the (2, n) float64 row blocks.
        self._eval_bytes = self.plan.total_params * 2 * 8

    def _shared_plan(self):
        """Publish the plan into a shared-memory arena (once, lazily).

        Returns a picklable ``(handle, metas)`` pair for the pool
        initializer; the arena itself stays owned by the engine and is
        reused across sweeps until :meth:`close`.
        """
        if self._arena is None:
            from ..parallel import TensorArena

            arena = TensorArena()
            with self.obs.span("merge.arena_publish", tensors=len(self.plan)):
                # Compact residency: rows whose float32 downcast is lossless
                # (all of them, for float32 source models) are stored
                # narrow; workers upcast exactly, so pooled sweeps stay
                # bit-identical to serial while the segment halves.
                metas = self.plan.publish(arena)
            self._arena = arena
            self._arena_metas = metas
            self.obs.registry.counter("merge.arena_bytes").inc(arena.nbytes)
        return self._arena.handle(), self._arena_metas

    def close(self) -> None:
        """Release the shared-memory arena, if one was published
        (idempotent; the engine stays usable for serial evaluation)."""
        if self._arena is not None:
            self._arena.close()
            self._arena = None
            self._arena_metas = None

    def __enter__(self) -> "GeodesicMergeEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def _account_evaluations(self, n_points: int) -> None:
        """Counter bookkeeping for ``n_points`` λ evaluations."""
        registry = self.obs.registry
        registry.counter("merge.evaluations").inc(n_points)
        registry.counter("merge.tensors_merged").inc(n_points * len(self.plan))
        registry.counter("merge.bytes_processed").inc(
            n_points * self._eval_bytes)

    # ------------------------------------------------------------------
    @classmethod
    def from_models(cls, chip_model, instruct_model,
                    **kwargs) -> "GeodesicMergeEngine":
        """Build an engine from two same-architecture models."""
        if chip_model.config != instruct_model.config:
            raise ValueError(
                "models must share an architecture: "
                f"{chip_model.config} vs {instruct_model.config}")
        return cls(chip_model.state_dict(), instruct_model.state_dict(), **kwargs)

    @staticmethod
    def _check_lam(lam: float) -> float:
        lam = float(lam)
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {lam}")
        return lam

    def new_buffers(self) -> "OrderedDict[str, np.ndarray]":
        """Preallocated float64 output buffers, one per merged tensor."""
        return OrderedDict((plan.key, np.empty(plan.shape, dtype=np.float64))
                           for plan in self.plan)

    # ------------------------------------------------------------------
    def merge(self, lam: float,
              out: Optional["OrderedDict[str, np.ndarray]"] = None,
              ) -> "OrderedDict[str, np.ndarray]":
        """Merged state dict at one λ (coefficient math + fused scale-add
        only).  Pass ``out`` (from :meth:`new_buffers`) to write in place."""
        lam = self._check_lam(lam)
        merged: "OrderedDict[str, np.ndarray]" = OrderedDict()
        with self.obs.span("merge.evaluate", lam=lam):
            for plan in self.plan:
                merged[plan.key] = plan.evaluate(
                    lam, out=None if out is None else out[plan.key])
        self._account_evaluations(1)
        return merged

    def merge_layerwise(self, schedule,
                        out: Optional["OrderedDict[str, np.ndarray]"] = None,
                        ) -> "OrderedDict[str, np.ndarray]":
        """Merged state dict under a per-layer λ schedule
        (:class:`~repro.core.layerwise.LambdaSchedule`)."""
        merged: "OrderedDict[str, np.ndarray]" = OrderedDict()
        with self.obs.span("merge.evaluate_layerwise"):
            for plan in self.plan:
                lam = self._check_lam(schedule.lam_for(plan.key))
                merged[plan.key] = plan.evaluate(
                    lam, out=None if out is None else out[plan.key])
        self._account_evaluations(1)
        return merged

    # ------------------------------------------------------------------
    def sweep(self, lams: Sequence[float],
              n_workers: Optional[int] = None,
              ) -> List["OrderedDict[str, np.ndarray]"]:
        """Merged state dicts for every λ in ``lams``.

        Each tensor's whole sweep lands in one ``(L, n)`` row block; the
        returned dicts hold row views into those per-tensor results (no
        per-λ copies).  With ``n_workers > 1`` tensors are evaluated by a
        worker pool against the shared-memory plan; results are
        bit-identical to the serial path (per-λ parallelism with ordered
        streaming is :meth:`isweep`'s job).
        """
        from ..parallel import effective_workers

        lam_arr = np.asarray([self._check_lam(lam) for lam in lams],
                             dtype=np.float64)
        workers = effective_workers(
            self.n_workers if n_workers is None else n_workers)
        with self.obs.span("merge.sweep", points=len(lam_arr),
                           workers=workers):
            if workers > 1 and len(self.plan) > 1:
                rows = self._sweep_parallel(lam_arr, workers)
            else:
                rows = {plan.key: plan.evaluate_sweep(lam_arr)
                        for plan in self.plan}
        self._account_evaluations(len(lam_arr))
        results: List["OrderedDict[str, np.ndarray]"] = []
        for index in range(len(lam_arr)):
            merged: "OrderedDict[str, np.ndarray]" = OrderedDict()
            for plan in self.plan:
                merged[plan.key] = rows[plan.key][index].reshape(plan.shape)
            results.append(merged)
        return results

    def isweep(self, lams: Sequence[float], reuse_buffers: bool = False,
               n_workers: Optional[int] = None,
               ) -> Iterator[Tuple[float, "OrderedDict[str, np.ndarray]"]]:
        """Yield ``(lam, merged_state_dict)`` lazily, one λ at a time.

        With ``reuse_buffers=True`` every yield writes into the *same*
        preallocated buffers — peak memory stays at one merged model no
        matter how long the sweep, at the price that each yielded dict is
        invalidated by the next step (consume it before advancing).

        With ``n_workers > 1`` the λ points are evaluated against the
        shared-memory plan by a worker pool and stream back **in λ order**
        as they complete; results are bit-identical to the serial path.
        Incompatible with ``reuse_buffers`` (each yielded dict is a fresh
        result shipped from a worker, not a view into engine buffers).
        """
        from ..parallel import effective_workers

        workers = effective_workers(
            self.n_workers if n_workers is None else n_workers)
        lam_list = [self._check_lam(lam) for lam in lams]
        if workers > 1 and len(lam_list) > 1:
            if reuse_buffers:
                raise ValueError(
                    "reuse_buffers is incompatible with n_workers > 1: "
                    "pooled results arrive as fresh arrays, not buffer views")
            yield from self._isweep_parallel(lam_list, workers)
            return
        out = self.new_buffers() if reuse_buffers else None
        for lam in lam_list:
            yield lam, self.merge(lam, out=out)

    def _pool(self, workers: int):
        from ..parallel import WorkerPool

        handle, metas = self._shared_plan()
        return WorkerPool(workers, initializer=_sweep_worker_init,
                          initargs=(handle, metas), obs=self.obs)

    def _sweep_parallel(self, lam_arr: np.ndarray,
                        workers: int) -> Dict[str, np.ndarray]:
        """Fan tensors out to a pool evaluating against the shared plan.

        Each worker computes whole ``(L, n)`` row blocks — the same GEMM
        the serial path runs — so results are bit-identical however the
        tensors land on workers (see :func:`_sweep_tensor_key`).
        """
        from ..parallel import task_context

        keys = self.plan.keys
        with task_context(sweep_lams=tuple(float(lam) for lam in lam_arr)):
            with self._pool(min(workers, len(keys))) as pool:
                parts = pool.map_chunked(_sweep_tensor_key, keys)
        return dict(zip(keys, parts))

    def _isweep_parallel(self, lam_list: List[float], workers: int,
                         ) -> Iterator[Tuple[float, "OrderedDict[str, np.ndarray]"]]:
        with self._pool(min(workers, len(lam_list))) as pool:
            with self.obs.span("merge.isweep", points=len(lam_list),
                               workers=workers):
                for index, results in pool.imap_chunked(
                        _merge_point, lam_list, chunk_size=1):
                    self._account_evaluations(1)
                    yield lam_list[index], results[0]
