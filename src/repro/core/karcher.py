"""Multi-model geodesic merging via the spherical (Karcher) mean.

The paper merges exactly two models; its conclusion notes ChipAlign "has
potential applications in other domains", and the natural generalisation is
fusing N ≥ 2 specialists.  The two-model geodesic midpoint generalises to the
*weighted Karcher mean* on the unit n-sphere: the point minimising the
weighted sum of squared geodesic distances to the inputs.  We compute it with
the standard fixed-point iteration in the tangent space (log/exp maps), then
restore magnitude with the weighted geometric mean of the source norms —
exactly ChipAlign's rescaling rule extended to N inputs.

For N = 2 the Karcher mean reduces to SLERP, which the tests verify.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

import numpy as np

from .geodesic import frobenius_norm, project_to_sphere
from .merge import StateDict


def log_map(base: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Riemannian log map on the unit sphere: the tangent vector at ``base``
    pointing toward ``point`` with length equal to their geodesic distance."""
    base = np.asarray(base, dtype=np.float64)
    point = np.asarray(point, dtype=np.float64)
    dot = float(np.clip(np.sum(base * point), -1.0, 1.0))
    theta = np.arccos(dot)
    if theta < 1e-12:
        return np.zeros_like(base)
    direction = point - dot * base
    norm = frobenius_norm(direction)
    if norm < 1e-15:
        raise ValueError("antipodal points have no unique log map")
    return theta * direction / norm


def exp_map(base: np.ndarray, tangent: np.ndarray) -> np.ndarray:
    """Riemannian exp map on the unit sphere: walk from ``base`` along
    ``tangent`` (length = arc distance) and return the arrival point."""
    base = np.asarray(base, dtype=np.float64)
    tangent = np.asarray(tangent, dtype=np.float64)
    theta = frobenius_norm(tangent)
    if theta < 1e-12:
        return base.copy()
    return np.cos(theta) * base + np.sin(theta) * tangent / theta


def karcher_mean(points: Sequence[np.ndarray],
                 weights: Optional[Sequence[float]] = None,
                 max_iter: int = 50, tol: float = 1e-10) -> np.ndarray:
    """Weighted Karcher mean of unit-norm arrays on the sphere.

    Fixed-point iteration: average the log maps at the current estimate,
    step along the mean tangent, repeat until the tangent norm is below
    ``tol``.  Converges for points within a geodesic ball of radius < π/2,
    which fine-tunes of a common base always satisfy in practice.
    """
    if not points:
        raise ValueError("need at least one point")
    if weights is None:
        weights = [1.0 / len(points)] * len(points)
    if len(weights) != len(points):
        raise ValueError("weights must align with points")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    weights = [w / total for w in weights]
    # Normalised arithmetic mean is a good initial estimate.
    estimate = sum(w * np.asarray(p, dtype=np.float64) for w, p in zip(weights, points))
    norm = frobenius_norm(estimate)
    if norm < 1e-12:
        raise ValueError("points are too spread out for a stable mean")
    estimate = estimate / norm
    for _ in range(max_iter):
        tangent = sum(w * log_map(estimate, p) for w, p in zip(weights, points))
        if frobenius_norm(tangent) < tol:
            break
        estimate = exp_map(estimate, tangent)
    return estimate


def karcher_merge_tensors(tensors: Sequence[np.ndarray],
                          weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """ChipAlign-style merge of N weight tensors: project to the sphere,
    take the weighted Karcher mean, restore the weighted-geometric-mean norm."""
    if not tensors:
        raise ValueError("need at least one tensor")
    if weights is None:
        weights = [1.0 / len(tensors)] * len(tensors)
    norms = [frobenius_norm(t) for t in tensors]
    if all(n == 0 for n in norms):
        return np.zeros_like(np.asarray(tensors[0]))
    if any(n == 0 for n in norms):
        # Degenerate tensors fall back to the weighted linear blend.
        total = float(sum(weights))
        return sum((w / total) * np.asarray(t, dtype=np.float64)
                   for w, t in zip(weights, tensors))
    units = [np.asarray(t, dtype=np.float64) / n for t, n in zip(tensors, norms)]
    mean_unit = karcher_mean(units, weights)
    total = float(sum(weights))
    log_norm = sum((w / total) * np.log(n) for w, n in zip(weights, norms))
    return float(np.exp(log_norm)) * mean_unit


def karcher_merge_rows(rows: np.ndarray,
                       weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Weighted Karcher merge of N tensors stacked as an ``(N, n)`` row matrix.

    This is the plan-based entry point: a
    :class:`~repro.core.merge_engine.TensorPlan` stores its endpoints as
    stacked flat rows, and a λ-fleet materializes Karcher variants straight
    from those rows.  Results are bit-identical to
    :func:`karcher_merge_tensors` on the unstacked source tensors (flattened)
    because every norm and unit computation upcasts to float64 on both paths;
    callers reshape the flat result.
    """
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim != 2:
        raise ValueError(f"expected an (N, n) row matrix, got shape {rows.shape}")
    return karcher_merge_tensors(list(rows), weights)


def karcher_merge_state_dicts(dicts: Sequence[StateDict],
                              weights: Optional[Sequence[float]] = None,
                              ) -> "OrderedDict[str, np.ndarray]":
    """Merge N conformable state dicts with the spherical Karcher mean."""
    if not dicts:
        raise ValueError("need at least one state dict")
    keys = list(dicts[0])
    for d in dicts[1:]:
        if list(d) != keys and set(d) != set(keys):
            raise KeyError("state dicts have non-matching keys")
    merged: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for key in keys:
        shapes = {np.asarray(d[key]).shape for d in dicts}
        if len(shapes) != 1:
            raise ValueError(f"tensor {key!r} has mismatched shapes: {shapes}")
        merged[key] = karcher_merge_tensors([d[key] for d in dicts], weights)
    return merged
