"""Evaluation: metrics, verifiable-instruction checking, judging, harnesses."""

from .rouge import RougeScore, lcs_length, mean_rouge_l, rouge_l
from .bleu import corpus_bleu, sentence_bleu
from .judge import JudgeVerdict, ReferenceJudge, content_words, mean_score
from .mcq_eval import MCQResult, choose, evaluate_mcq
from .harness import (GROUNDING_TEXT, INDUSTRIAL_INSTRUCTIONS, OPENROAD_INSTRUCTIONS,
                      Answerer, IndustrialReport, LMAnswerer, OpenRoadReport,
                      golden_reference, run_industrial, run_industrial_multiturn,
                      run_openroad)
from .oracles import GeneralOracle, RagEdaOracle, split_sentences
from .ifeval import IFEvalResult, evaluate_model, evaluate_responses
from .unieval import UniEvalScore, UniEvaluator
from .perplexity import PerplexityResult, compare_perplexity, corpus_perplexity

__all__ = [
    "RougeScore", "lcs_length", "mean_rouge_l", "rouge_l",
    "corpus_bleu", "sentence_bleu",
    "JudgeVerdict", "ReferenceJudge", "content_words", "mean_score",
    "MCQResult", "choose", "evaluate_mcq",
    "GROUNDING_TEXT", "INDUSTRIAL_INSTRUCTIONS", "OPENROAD_INSTRUCTIONS",
    "Answerer", "IndustrialReport", "LMAnswerer", "OpenRoadReport",
    "golden_reference", "run_industrial", "run_industrial_multiturn", "run_openroad",
    "GeneralOracle", "RagEdaOracle", "split_sentences",
    "IFEvalResult", "evaluate_model", "evaluate_responses",
    "UniEvalScore", "UniEvaluator",
    "PerplexityResult", "compare_perplexity", "corpus_perplexity",
]
