"""BLEU score (Papineni et al., 2002).

The paper mentions BLEU as an alternative metric it found less
representative than ROUGE-L on the OpenROAD benchmark; we provide it for the
same comparison.  Implements corpus-level BLEU with modified n-gram
precision, uniform weights up to 4-grams, add-nothing clipping, and the
brevity penalty, plus a smoothed sentence-level variant.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Sequence, Tuple


def _ngrams(tokens: Sequence[str], n: int) -> Counter:
    return Counter(tuple(tokens[i: i + n]) for i in range(len(tokens) - n + 1))


def modified_precision(candidate: Sequence[str], reference: Sequence[str],
                       n: int) -> Tuple[int, int]:
    """Clipped n-gram matches and total candidate n-grams."""
    cand_counts = _ngrams(candidate, n)
    ref_counts = _ngrams(reference, n)
    matches = sum(min(count, ref_counts[gram]) for gram, count in cand_counts.items())
    total = max(sum(cand_counts.values()), 0)
    return matches, total


def sentence_bleu(candidate: str, reference: str, max_n: int = 4,
                  smooth: float = 1.0) -> float:
    """Smoothed sentence-level BLEU (add-``smooth`` on counts)."""
    cand = candidate.split()
    ref = reference.split()
    if not cand or not ref:
        return 0.0
    log_precisions = []
    for n in range(1, max_n + 1):
        matches, total = modified_precision(cand, ref, n)
        log_precisions.append(math.log((matches + smooth) / (total + smooth)))
    geo_mean = math.exp(sum(log_precisions) / max_n)
    bp = 1.0 if len(cand) >= len(ref) else math.exp(1 - len(ref) / len(cand))
    return bp * geo_mean


def corpus_bleu(candidates: Sequence[str], references: Sequence[str],
                max_n: int = 4) -> float:
    """Corpus-level BLEU with the standard micro-averaged precisions."""
    if len(candidates) != len(references):
        raise ValueError("candidates and references must align")
    if not candidates:
        raise ValueError("empty evaluation set")
    match_totals = [0] * max_n
    cand_totals = [0] * max_n
    cand_len = ref_len = 0
    for c, r in zip(candidates, references):
        cand, ref = c.split(), r.split()
        cand_len += len(cand)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            matches, total = modified_precision(cand, ref, n)
            match_totals[n - 1] += matches
            cand_totals[n - 1] += total
    if cand_len == 0:
        return 0.0
    log_sum = 0.0
    for matches, total in zip(match_totals, cand_totals):
        if matches == 0 or total == 0:
            return 0.0
        log_sum += math.log(matches / total)
    geo_mean = math.exp(log_sum / max_n)
    bp = 1.0 if cand_len >= ref_len else math.exp(1 - ref_len / cand_len)
    return bp * geo_mean
