"""Multiple-choice evaluation by length-normalised log-probability.

The MCQ benchmark items carry no instructions, so they measure pure domain
knowledge (Figure 7).  Each choice is scored as a continuation of the
question prompt under the model; the choice with the highest per-token
log-probability wins — the standard closed-book MCQ protocol for language
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..data.mcq import DOMAINS, MCQItem
from ..data.prompting import format_prompt
from ..nn.generation import continuation_logprob
from ..parallel import (WorkerPool, effective_workers, get_task_context,
                        task_context)


@dataclass(frozen=True)
class MCQResult:
    """Accuracy per domain plus the overall mean."""

    by_domain: Dict[str, float]

    @property
    def overall(self) -> float:
        return sum(self.by_domain.values()) / len(self.by_domain)


def choose(model, tokenizer, item: MCQItem) -> int:
    """Return the index of the model's preferred choice."""
    prompt = format_prompt(item.question)
    prompt_ids = tokenizer.encode(prompt, add_bos=True)
    scores: List[float] = []
    for choice in item.choices:
        choice_ids = tokenizer.encode(choice)
        if not choice_ids:
            raise ValueError(f"empty choice text in item {item.question!r}")
        logp = continuation_logprob(model, prompt_ids, choice_ids)
        scores.append(logp / len(choice_ids))
    return int(np.argmax(scores))


def _mcq_item(item: MCQItem) -> int:
    """Worker-side scoring: model/tokenizer ride the fork-inherited context."""
    ctx = get_task_context()
    return choose(ctx["model"], ctx["tokenizer"], item)


def evaluate_mcq(model, tokenizer, items: Sequence[MCQItem],
                 workers=None, obs=None) -> MCQResult:
    """Accuracy of the model over ``items``, reported per domain.

    ``workers`` > 1 scores items in a :class:`~repro.parallel.WorkerPool`
    (model weights fork-inherited, never pickled); accuracies are
    bit-identical to the serial path.
    """
    if not items:
        raise ValueError("empty MCQ item set")
    workers = effective_workers(workers)
    if workers > 1:
        with task_context(model=model, tokenizer=tokenizer):
            pool_kwargs = {} if obs is None else {"obs": obs}
            with WorkerPool(workers, **pool_kwargs) as pool:
                chosen = pool.map_chunked(_mcq_item, list(items))
    else:
        chosen = [choose(model, tokenizer, item) for item in items]
    correct: Dict[str, int] = {}
    total: Dict[str, int] = {}
    for item, pick in zip(items, chosen):
        total[item.domain] = total.get(item.domain, 0) + 1
        if pick == item.answer_idx:
            correct[item.domain] = correct.get(item.domain, 0) + 1
    by_domain = {d: correct.get(d, 0) / total[d] for d in total}
    return MCQResult(by_domain)
