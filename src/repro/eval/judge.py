"""Deterministic reference-based answer grader (the GPT-4-judge substitute).

The paper grades industrial chip QA with a GPT-4 judge that compares each
response to the golden answer and emits a score in {0, 25, 50, 75, 100}
(Section IV-A).  Offline, we replace it with a transparent rubric that
measures the two properties the paper's judge rewards in Figure 6:

* **fact coverage** — how much of the golden answer's content the response
  reproduces (LCS recall over content words);
* **grounding** — whether the response stays within the provided context
  (fraction of response content words present in context + question),
  penalising the "not supported by context" failures of Figure 6.

The rubric maps coverage to the 5-point scale and caps the score when the
response is poorly grounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .rouge import lcs_length

SCORE_LEVELS = (0, 25, 50, 75, 100)

#: Function words ignored when comparing content, plus the decoration tokens
#: that instruction compliance adds (prefixes, suffixes, separators, quotes) —
#: the judge grades substance, not formatting.
STOPWORDS = frozenset(
    "the a an of to is are in on at with for and or do does did i you it its "
    "this that which what how where when who your my one each "
    'based context answer note response done over thanks next indeed surely clearly " :'.split()
)


def content_words(text: str) -> List[str]:
    """Whitespace tokens with function words removed."""
    return [w for w in text.split() if w not in STOPWORDS]


@dataclass(frozen=True)
class JudgeVerdict:
    """One graded response."""

    score: int
    coverage: float
    grounding: float

    def __post_init__(self) -> None:
        if self.score not in SCORE_LEVELS:
            raise ValueError(f"score must be one of {SCORE_LEVELS}, got {self.score}")


class ReferenceJudge:
    """Grade responses against golden answers on the paper's 5-point scale.

    Thresholds are part of the published rubric: coverage ≥0.9 → 100,
    ≥0.65 → 75, ≥0.4 → 50, ≥0.15 → 25, else 0; grounding below 0.7 caps the
    score at 50 and below 0.4 caps it at 25 (an ungrounded answer can never
    be rated "supported by context").
    """

    def __init__(self, coverage_thresholds=(0.9, 0.65, 0.4, 0.15),
                 grounding_caps=((0.7, 50), (0.4, 25))) -> None:
        if list(coverage_thresholds) != sorted(coverage_thresholds, reverse=True):
            raise ValueError("coverage thresholds must be decreasing")
        self.coverage_thresholds = tuple(coverage_thresholds)
        self.grounding_caps = tuple(grounding_caps)

    # ------------------------------------------------------------------
    def coverage(self, response: str, golden: str) -> float:
        """LCS recall of the golden answer's content words in the response."""
        gold = content_words(golden)
        resp = content_words(response)
        if not gold:
            return 1.0
        if not resp:
            return 0.0
        return lcs_length(resp, gold) / len(gold)

    def grounding(self, response: str, context: str, question: str) -> float:
        """Fraction of response content words grounded in context or question.

        The canonical refusal phrase is meta-language, not a factual claim,
        so its words are always considered grounded — refusing when the
        context lacks the answer is the *most* grounded behaviour.
        """
        resp = content_words(response)
        if not resp:
            return 0.0
        from ..data.prompting import REFUSAL

        allowed = (set(content_words(context)) | set(content_words(question))
                   | set(content_words(REFUSAL)))
        return sum(1 for w in resp if w in allowed) / len(resp)

    # ------------------------------------------------------------------
    def grade(self, response: str, golden: str, context: str,
              question: str = "") -> JudgeVerdict:
        """Grade one response; see class docstring for the rubric."""
        cov = self.coverage(response, golden)
        gnd = self.grounding(response, context, question)
        score = 0
        for threshold, level in zip(self.coverage_thresholds, (100, 75, 50, 25)):
            if cov >= threshold:
                score = level
                break
        for g_threshold, cap in self.grounding_caps:
            if gnd < g_threshold:
                score = min(score, cap)
        return JudgeVerdict(score, cov, gnd)

    def grade_batch(self, responses: Sequence[str], goldens: Sequence[str],
                    contexts: Sequence[str],
                    questions: Sequence[str]) -> List[JudgeVerdict]:
        """Grade aligned batches; raises on length mismatch."""
        if not (len(responses) == len(goldens) == len(contexts) == len(questions)):
            raise ValueError("all inputs must align")
        return [self.grade(r, g, c, q)
                for r, g, c, q in zip(responses, goldens, contexts, questions)]


def mean_score(verdicts: Sequence[JudgeVerdict]) -> float:
    """Mean judge score over a batch of verdicts."""
    if not verdicts:
        raise ValueError("no verdicts to average")
    return sum(v.score for v in verdicts) / len(verdicts)
