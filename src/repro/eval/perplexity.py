"""Perplexity evaluation for substrate language models.

Standard held-out diagnostics for the training pipelines: token-level
negative log-likelihood and perplexity over a corpus, plus a convenience
comparison helper used to sanity-check DAPT (the chip model should have far
lower perplexity on chip documents than the chat model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..nn import functional as F
from ..nn.tensor import no_grad
from ..nn.trainer import IGNORE_INDEX, pad_batch


@dataclass(frozen=True)
class PerplexityResult:
    """NLL/perplexity over a corpus."""

    nll: float
    n_tokens: int

    @property
    def perplexity(self) -> float:
        return math.exp(self.nll)


def corpus_perplexity(model, tokenizer, sentences: Sequence[str],
                      batch_size: int = 16) -> PerplexityResult:
    """Mean token NLL and perplexity of ``model`` over raw sentences."""
    if not sentences:
        raise ValueError("empty corpus")
    sequences: List[List[int]] = []
    for sentence in sentences:
        ids = tokenizer.encode(sentence, add_bos=True, add_eos=True)
        if len(ids) >= 2:
            sequences.append(ids)
    if not sequences:
        raise ValueError("no scorable sentences (all shorter than 2 tokens)")
    model.eval()
    total_nll, total_tokens = 0.0, 0
    with no_grad():
        for start in range(0, len(sequences), batch_size):
            batch = sequences[start: start + batch_size]
            inputs, targets = pad_batch(batch, tokenizer.pad_id)
            n_tok = int((targets != IGNORE_INDEX).sum())
            logits = model(inputs)
            loss = F.cross_entropy(logits, targets, ignore_index=IGNORE_INDEX)
            total_nll += loss.item() * n_tok
            total_tokens += n_tok
    return PerplexityResult(total_nll / total_tokens, total_tokens)


def compare_perplexity(models: Dict[str, object], tokenizer,
                       sentences: Sequence[str]) -> Dict[str, float]:
    """Perplexity of several named models over the same corpus."""
    return {name: corpus_perplexity(model, tokenizer, sentences).perplexity
            for name, model in models.items()}
