"""Benchmark drivers: run any answerer over the QA benchmarks.

An *answerer* is anything with the :class:`Answerer` interface — a wrapped
substrate language model (:class:`LMAnswerer`) or one of the deterministic
oracle baselines in :mod:`repro.eval.oracles`.  The drivers here reproduce
the measurement protocols behind Tables 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..data.industrial_qa import IndustrialItem, MultiTurnItem
from ..obs import Observability
from ..data.openroad_qa import CATEGORIES as OPENROAD_CATEGORIES
from ..data.openroad_qa import QATriplet
from ..data.prompting import format_prompt
from ..parallel import (WorkerPool, effective_workers, get_task_context,
                        task_context, task_obs, worker_obs)
from .ifeval.instructions import Instruction, StartWith
from .judge import JudgeVerdict, ReferenceJudge
from .rouge import rouge_l

InstructionLike = Union[Instruction, str]

#: The fixed instruction block of the OpenROAD QA evaluation (Figure 5: the
#: 90 eval triplets "all follow the same instruction" — make the answer
#: rigorous and grounded in the provided context).  These are conditioning
#: text: golden references stay plain, so ROUGE-L measures answer quality,
#: and the instruction block separates models by their robustness to
#: instruction-bearing prompts (what DAFT erodes).
GROUNDING_TEXT = "answer using only the provided context"
RIGOR_TEXT = "make your answer rigorous and concrete"
OPENROAD_PREFIX = StartWith("based on the context")
OPENROAD_INSTRUCTIONS: Tuple[InstructionLike, ...] = (GROUNDING_TEXT, RIGOR_TEXT)

#: The industrial prompts carry the Figure-6-style grounding directive plus
#: a verifiable format directive ("Please adhere to the following format...")
#: whose violations the judge penalises.
INDUSTRIAL_INSTRUCTIONS: Tuple[InstructionLike, ...] = (GROUNDING_TEXT, OPENROAD_PREFIX)

#: A response violating a verifiable instruction cannot be rated above this
#: (the judge's analog of Figure 6's "Not supported by context" downgrades).
COMPLIANCE_CAP = 75


def _apply_compliance_cap(verdict: JudgeVerdict, response: str,
                          instructions: Sequence[InstructionLike]) -> JudgeVerdict:
    """Cap the judge score when a verifiable instruction is violated."""
    violated = any(isinstance(ins, Instruction) and not ins.check(response)
                   for ins in instructions)
    if not violated or verdict.score <= COMPLIANCE_CAP:
        return verdict
    return JudgeVerdict(COMPLIANCE_CAP, verdict.coverage, verdict.grounding)


def render_instruction(instruction: InstructionLike) -> str:
    """Instruction objects render themselves; plain strings pass through."""
    return instruction.render() if isinstance(instruction, Instruction) else instruction


def golden_reference(answer: str, instructions: Sequence[InstructionLike]) -> str:
    """The reference string a fully compliant, fully correct model would emit.

    Verifiable instructions rewrite the golden answer through their
    ``make_compliant`` transforms, so ROUGE-L rewards compliance exactly the
    way the paper's golden answers do.
    """
    ref = answer
    for instruction in instructions:
        if isinstance(instruction, Instruction):
            ref = instruction.make_compliant(ref)
    return ref


class Answerer:
    """Interface: produce an answer for a (possibly grounded) question."""

    name: str = "answerer"

    def answer(self, question: str, context: Optional[str] = None,
               instructions: Sequence[InstructionLike] = (),
               history: Sequence[Tuple[str, str]] = ()) -> str:
        raise NotImplementedError


class LMAnswerer(Answerer):
    """Wrap a substrate language model + tokenizer as an answerer.

    By default each completion runs through a private single-sequence
    :class:`~repro.nn.infer.InferenceEngine`.  Pass ``server=True`` (or an
    existing :class:`~repro.serve.InProcessServer`) to route completions
    through the serving subsystem instead — ``True`` builds a server in
    exact decode mode with the prefix cache off, which replays the
    single-sequence math shape-for-shape and therefore produces identical
    evaluation scores.  A caller-supplied fused server trades that bitwise
    guarantee for batched throughput.
    """

    def __init__(self, model, tokenizer, max_new_tokens: int = 56,
                 name: str = "lm", server=None) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.max_new_tokens = max_new_tokens
        self.name = name
        self._engine = None
        if server is True:
            from ..serve import InProcessServer, ServeConfig

            server = InProcessServer(model, tokenizer, config=ServeConfig(
                decode_mode="exact", prefix_cache=False, max_batch_size=1))
        self.server = server
        if server is None:
            from ..nn.infer import InferenceEngine

            self._engine = InferenceEngine(model)

    def answer(self, question: str, context: Optional[str] = None,
               instructions: Sequence[InstructionLike] = (),
               history: Sequence[Tuple[str, str]] = ()) -> str:
        prompt = format_prompt(question, context=context,
                               instructions=[render_instruction(i) for i in instructions],
                               history=history)
        return self.complete(prompt)

    def complete(self, prompt: str) -> str:
        """Raw-prompt completion (used by the IFEval driver)."""
        if self.server is not None:
            from ..serve import SamplingParams

            return self.server.complete_text(prompt, params=SamplingParams(
                max_new_tokens=self.max_new_tokens))
        from ..nn.infer import generate_text_fast

        return generate_text_fast(self._engine, self.tokenizer, prompt,
                                  max_new_tokens=self.max_new_tokens)


# ---------------------------------------------------------------------------
# per-item work functions (shared by the serial and parallel paths)
# ---------------------------------------------------------------------------
#
# Each benchmark driver reduces to "run this item function over a list of
# plain-data tasks".  The answerer/judge/instructions ride in the fork-
# inherited task context (never pickled); tasks and results are small plain
# data.  Serial mode runs the same function inline under ``task_obs``, so
# the two paths are bit-identical by construction.


def _openroad_item(task: Tuple[str, Optional[str], str, str]) -> Tuple[str, float]:
    """Generate + ROUGE-score one OpenROAD QA triplet."""
    question, context, category, reference = task
    ctx = get_task_context()
    with worker_obs().span("eval.openroad.item", category=category):
        response = ctx["answerer"].answer(question, context=context,
                                          instructions=ctx["instructions"])
    return response, rouge_l(response, reference).fmeasure


def _industrial_item(task) -> Tuple[str, JudgeVerdict]:
    """Generate + judge one industrial QA item (single- or multi-turn)."""
    question, context, golden, history, judge_question = task
    ctx = get_task_context()
    instructions = ctx["instructions"]
    response = ctx["answerer"].answer(question, context=context,
                                      instructions=instructions,
                                      history=history)
    verdict = ctx["judge"].grade(response, golden, context, judge_question)
    verdict = _apply_compliance_cap(verdict, response, instructions)
    return response, verdict


def _run_items(fn, tasks, workers: int, obs: Observability) -> List:
    """Run an item function over tasks — pooled, or inline when serial."""
    if workers > 1:
        with WorkerPool(workers, obs=obs) as pool:
            return pool.map_chunked(fn, tasks)
    with task_obs(obs):
        return [fn(task) for task in tasks]


# ---------------------------------------------------------------------------
# OpenROAD QA (Table 1)
# ---------------------------------------------------------------------------


@dataclass
class OpenRoadReport:
    """ROUGE-L results of one model on the OpenROAD QA benchmark."""

    by_category: Dict[str, float]
    overall: float
    responses: List[str] = field(default_factory=list)
    references: List[str] = field(default_factory=list)


def run_openroad(answerer: Answerer, triplets: Sequence[QATriplet],
                 context_mode: str = "golden", rag_pipeline=None,
                 instructions: Sequence[InstructionLike] = OPENROAD_INSTRUCTIONS,
                 obs: Optional[Observability] = None,
                 workers: Optional[int] = None) -> OpenRoadReport:
    """Evaluate an answerer on OpenROAD QA triplets with ROUGE-L.

    ``context_mode='golden'`` supplies each item's golden paragraph;
    ``'rag'`` retrieves the context with the supplied pipeline, matching the
    paper's two Table-1 regimes.  ``obs`` (optional) records a per-benchmark
    timing span plus item/score gauges under ``eval.openroad.*``.

    ``workers`` > 1 fans per-item generation + scoring out to a
    :class:`~repro.parallel.WorkerPool` (retrieval stays in the parent —
    the pipeline's index is not shared).  Scores, responses, and eval
    counters are bit-identical to the serial path.
    """
    if context_mode not in ("golden", "rag"):
        raise ValueError(f"context_mode must be 'golden' or 'rag', got {context_mode!r}")
    if context_mode == "rag" and rag_pipeline is None:
        raise ValueError("rag context mode requires a rag_pipeline")
    if not triplets:
        raise ValueError("empty evaluation set")
    obs = obs if obs is not None else Observability()
    workers = effective_workers(workers)
    with obs.span("eval.openroad", items=len(triplets),
                  context_mode=context_mode, answerer=answerer.name,
                  workers=workers):
        tasks = []
        references: List[str] = []
        for triplet in triplets:
            if context_mode == "golden":
                context = triplet.context
            else:
                context = rag_pipeline.retrieve(triplet.question).context
            reference = golden_reference(triplet.answer, instructions)
            references.append(reference)
            tasks.append((triplet.question, context, triplet.category,
                          reference))
        with task_context(answerer=answerer,
                          instructions=tuple(instructions)):
            results = _run_items(_openroad_item, tasks, workers, obs)
    responses = [response for response, _ in results]
    scores: Dict[str, List[float]] = {c: [] for c in OPENROAD_CATEGORIES}
    for triplet, (_, fmeasure) in zip(triplets, results):
        scores[triplet.category].append(fmeasure)
    by_category = {c: (sum(v) / len(v) if v else 0.0) for c, v in scores.items()}
    flat = [s for v in scores.values() for s in v]
    overall = sum(flat) / len(flat)
    obs.registry.counter("eval.openroad.items").inc(len(triplets))
    obs.registry.gauge("eval.openroad.rouge_l").set(overall)
    return OpenRoadReport(by_category, overall, responses, references)


# ---------------------------------------------------------------------------
# Industrial chip QA (Table 2)
# ---------------------------------------------------------------------------


@dataclass
class IndustrialReport:
    """Judge-scored results on the industrial chip QA benchmark."""

    by_category: Dict[str, float]
    overall: float
    verdicts: List[JudgeVerdict] = field(default_factory=list)
    responses: List[str] = field(default_factory=list)


def _industrial_report(items, results, obs: Observability,
                       benchmark: str) -> IndustrialReport:
    """Assemble the report + counters shared by both industrial drivers."""
    scores: Dict[str, List[int]] = {}
    verdicts: List[JudgeVerdict] = []
    responses: List[str] = []
    for item, (response, verdict) in zip(items, results):
        verdicts.append(verdict)
        responses.append(response)
        scores.setdefault(item.category, []).append(verdict.score)
    by_category = {c: sum(v) / len(v) for c, v in scores.items()}
    flat = [s for v in scores.values() for s in v]
    overall = sum(flat) / len(flat)
    obs.registry.counter(f"eval.{benchmark}.items").inc(len(items))
    obs.registry.gauge(f"eval.{benchmark}.score").set(overall)
    return IndustrialReport(by_category, overall, verdicts, responses)


def run_industrial(answerer: Answerer, items: Sequence[IndustrialItem],
                   judge: Optional[ReferenceJudge] = None,
                   instructions: Sequence[InstructionLike] = INDUSTRIAL_INSTRUCTIONS,
                   obs: Optional[Observability] = None,
                   workers: Optional[int] = None) -> IndustrialReport:
    """Single-turn industrial QA with GPT-4-style judge scoring.

    ``workers`` > 1 runs generation + judging per item in a worker pool;
    scores and verdicts are bit-identical to the serial path.
    """
    if not items:
        raise ValueError("empty evaluation set")
    judge = judge or ReferenceJudge()
    obs = obs if obs is not None else Observability()
    workers = effective_workers(workers)
    with obs.span("eval.industrial", items=len(items), answerer=answerer.name,
                  workers=workers):
        tasks = [(item.question, item.context,
                  golden_reference(item.answer, instructions), (),
                  item.question) for item in items]
        with task_context(answerer=answerer, judge=judge,
                          instructions=tuple(instructions)):
            results = _run_items(_industrial_item, tasks, workers, obs)
    return _industrial_report(items, results, obs, "industrial")


def run_industrial_multiturn(answerer: Answerer, items: Sequence[MultiTurnItem],
                             judge: Optional[ReferenceJudge] = None,
                             instructions: Sequence[InstructionLike] = INDUSTRIAL_INSTRUCTIONS,
                             obs: Optional[Observability] = None,
                             workers: Optional[int] = None,
                             ) -> IndustrialReport:
    """Multi-turn industrial QA: models are scored on the follow-up answer.

    The first turn's golden answer is injected as conversation history (so
    every model is graded on the same second-turn task, isolating follow-up
    ability from first-turn quality).  ``workers`` as in
    :func:`run_industrial`.
    """
    if not items:
        raise ValueError("empty evaluation set")
    judge = judge or ReferenceJudge()
    obs = obs if obs is not None else Observability()
    workers = effective_workers(workers)
    with obs.span("eval.industrial_multiturn", items=len(items),
                  answerer=answerer.name, workers=workers):
        tasks = [(item.question, item.context,
                  golden_reference(item.answer, instructions),
                  ((item.first_question, item.first_answer),),
                  item.question + " " + item.first_question)
                 for item in items]
        with task_context(answerer=answerer, judge=judge,
                          instructions=tuple(instructions)):
            results = _run_items(_industrial_item, tasks, workers, obs)
    return _industrial_report(items, results, obs, "industrial_multiturn")
