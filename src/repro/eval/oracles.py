"""Deterministic oracle baselines standing in for closed models.

Two Table-1 rows cannot be reproduced as substrate LMs because the paper's
versions are closed systems we cannot train an analog of:

* **GPT-4 Turbo** → :class:`GeneralOracle`: a strong *general* context
  reader with no chip-domain tuning.  It extracts the single context
  sentence most relevant to the question and follows the prompt's
  verifiable instructions — strong alignment, generic extraction.
* **RAG-EDA** → :class:`RagEdaOracle`: the "highly customised retrieval
  pipeline" row; it runs its own retrieval over the documentation and
  returns the top sentences of the retrieved paragraph.

Both implement the :class:`~repro.eval.harness.Answerer` interface so the
benchmark drivers treat them exactly like substrate models.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..rag.pipeline import RagPipeline
from ..rag.reranker import OverlapReranker
from .harness import Answerer, InstructionLike
from .ifeval.instructions import Instruction


def split_sentences(text: str) -> List[str]:
    """Split the synthetic documentation on its '.' sentence separators."""
    sentences = [s.strip() for s in text.split(" . ")]
    return [s.rstrip(" .") for s in sentences if s.strip(" .")]


def _apply_instructions(answer: str,
                        instructions: Sequence[InstructionLike]) -> str:
    for instruction in instructions:
        if isinstance(instruction, Instruction):
            answer = instruction.make_compliant(answer)
    return answer


class GeneralOracle(Answerer):
    """Extractive general-purpose reader (the GPT-4 Turbo substitute).

    Picks the context sentence with the highest IDF-weighted overlap with
    the question.  It is instruction-compliant by construction but has no
    notion of the domain's answer conventions (multi-sentence procedures,
    stage phrasing), which keeps it below the domain-adapted models —
    matching GPT-4's position in Table 1.
    """

    def __init__(self, name: str = "general-oracle") -> None:
        self.name = name

    def answer(self, question: str, context: Optional[str] = None,
               instructions: Sequence[InstructionLike] = (),
               history: Sequence[Tuple[str, str]] = ()) -> str:
        if not context:
            return _apply_instructions("i do not have enough information "
                                       "to answer this question", instructions)
        sentences = split_sentences(context)
        reranker = OverlapReranker(sentences)
        best = reranker.rerank(question, list(enumerate(sentences)), top_k=1)
        answer = sentences[best[0][0]]
        return _apply_instructions(answer, instructions)


class RagEdaOracle(Answerer):
    """Retrieval-customised extractive pipeline (the RAG-EDA substitute).

    Ignores the supplied context and re-retrieves from its own documentation
    index (that is what makes it "customised"), then answers with the top
    two sentences of the retrieved paragraph ranked against the question.
    """

    def __init__(self, corpus: Sequence[str], name: str = "rag-eda",
                 top_sentences: int = 2) -> None:
        if top_sentences <= 0:
            raise ValueError("top_sentences must be positive")
        self.pipeline = RagPipeline(list(corpus))
        self.top_sentences = top_sentences
        self.name = name

    def answer(self, question: str, context: Optional[str] = None,
               instructions: Sequence[InstructionLike] = (),
               history: Sequence[Tuple[str, str]] = ()) -> str:
        retrieved = self.pipeline.retrieve(question).context
        sentences = split_sentences(retrieved)
        reranker = OverlapReranker(sentences)
        ranked = reranker.rerank(question, list(enumerate(sentences)),
                                 top_k=min(self.top_sentences, len(sentences)))
        ordered = sorted(i for i, _ in ranked)
        answer = " . ".join(sentences[i] for i in ordered)
        return _apply_instructions(answer, instructions)
