"""A UniEval-style multi-dimensional response evaluator.

The paper mentions comparing ROUGE-L against BLEU and UniEval scores on the
OpenROAD benchmark (Section IV-A) and finding ROUGE-L most representative.
To support that comparison, this module provides a lightweight,
deterministic analog of UniEval's multi-dimensional evaluation: it scores a
response along four dimensions and aggregates them.

* **relevance** — content overlap with the golden answer (LCS recall);
* **consistency** — grounding of the response in the source context;
* **fluency** — repetition-free, reasonable-length text (degenerate loops
  and single-word outputs score low);
* **coherence** — the response stays on the question's topic.

Each dimension is in [0, 1]; :meth:`UniEvaluator.overall` is their mean.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from .judge import content_words
from .rouge import lcs_length


@dataclass(frozen=True)
class UniEvalScore:
    """Per-dimension scores of one response."""

    relevance: float
    consistency: float
    fluency: float
    coherence: float

    @property
    def overall(self) -> float:
        return (self.relevance + self.consistency + self.fluency + self.coherence) / 4

    def as_dict(self) -> Dict[str, float]:
        return {"relevance": self.relevance, "consistency": self.consistency,
                "fluency": self.fluency, "coherence": self.coherence,
                "overall": self.overall}


class UniEvaluator:
    """Multi-dimensional reference-based response evaluator."""

    def __init__(self, min_length: int = 3, max_length: int = 64) -> None:
        if min_length <= 0 or max_length <= min_length:
            raise ValueError("need 0 < min_length < max_length")
        self.min_length = min_length
        self.max_length = max_length

    # ------------------------------------------------------------------
    def relevance(self, response: str, golden: str) -> float:
        gold = content_words(golden)
        resp = content_words(response)
        if not gold:
            return 1.0
        if not resp:
            return 0.0
        return lcs_length(resp, gold) / len(gold)

    def consistency(self, response: str, context: str) -> float:
        resp = content_words(response)
        if not resp:
            return 0.0
        allowed = set(content_words(context))
        return sum(1 for w in resp if w in allowed) / len(resp)

    def fluency(self, response: str) -> float:
        words = response.split()
        if len(words) < self.min_length:
            return 0.0
        # Penalise degenerate repetition: distinct-bigram ratio.
        if len(words) == 1:
            return 0.5
        bigrams = list(zip(words, words[1:]))
        distinct = len(set(bigrams)) / len(bigrams)
        # Penalise run-away length.
        length_penalty = 1.0 if len(words) <= self.max_length else \
            self.max_length / len(words)
        return distinct * length_penalty

    def coherence(self, response: str, question: str) -> float:
        resp = set(content_words(response))
        q = set(content_words(question))
        if not q:
            return 1.0
        if not resp:
            return 0.0
        return len(resp & q) / len(q)

    # ------------------------------------------------------------------
    def score(self, response: str, golden: str, context: str,
              question: str) -> UniEvalScore:
        """Score one response along all four dimensions."""
        return UniEvalScore(
            relevance=self.relevance(response, golden),
            consistency=self.consistency(response, context),
            fluency=self.fluency(response),
            coherence=self.coherence(response, question),
        )
