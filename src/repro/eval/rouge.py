"""ROUGE-L: longest-common-subsequence-based summary metric (Lin, 2004).

The paper scores OpenROAD QA answers with ROUGE-L against golden answers
(Section IV-A); this is a from-scratch implementation of the sentence-level
metric: LCS-based precision, recall, and F-measure over whitespace tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class RougeScore:
    """Precision/recall/F1 of one ROUGE comparison."""

    precision: float
    recall: float
    fmeasure: float


def lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the longest common subsequence of two token sequences.

    Standard O(len(a)·len(b)) dynamic program with a rolling row.
    """
    if not a or not b:
        return 0
    prev = [0] * (len(b) + 1)
    for x in a:
        curr = [0] * (len(b) + 1)
        for j, y in enumerate(b, start=1):
            if x == y:
                curr[j] = prev[j - 1] + 1
            else:
                curr[j] = max(prev[j], curr[j - 1])
        prev = curr
    return prev[-1]


def rouge_l(candidate: str, reference: str, beta: float = 1.2) -> RougeScore:
    """Sentence-level ROUGE-L between a candidate and a reference string.

    ``beta`` weights recall over precision in the F-measure, following the
    original formulation (β=1.2 is the common default).
    """
    cand = candidate.split()
    ref = reference.split()
    if not cand or not ref:
        return RougeScore(0.0, 0.0, 0.0)
    lcs = lcs_length(cand, ref)
    precision = lcs / len(cand)
    recall = lcs / len(ref)
    if precision == 0.0 and recall == 0.0:
        return RougeScore(0.0, 0.0, 0.0)
    beta2 = beta * beta
    fmeasure = (1 + beta2) * precision * recall / (recall + beta2 * precision)
    return RougeScore(precision, recall, fmeasure)


def mean_rouge_l(candidates: Sequence[str], references: Sequence[str],
                 beta: float = 1.2) -> float:
    """Mean ROUGE-L F-measure over aligned candidate/reference lists."""
    if len(candidates) != len(references):
        raise ValueError("candidates and references must align")
    if not candidates:
        raise ValueError("empty evaluation set")
    scores = [rouge_l(c, r, beta).fmeasure for c, r in zip(candidates, references)]
    return sum(scores) / len(scores)
