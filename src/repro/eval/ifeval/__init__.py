"""IFEval reimplementation: verifiable instructions + accuracy evaluator."""

from .instructions import (ALL_KINDS, AvoidWord, EndWith, IncludeWord,
                           Instruction, MaxWords, MinWords, QuoteWrap,
                           RepeatQuestion, StartWith, TwoParts,
                           build_instruction, check_loose)
from .evaluator import IFEvalResult, evaluate_model, evaluate_responses

__all__ = [
    "ALL_KINDS", "AvoidWord", "EndWith", "IncludeWord", "Instruction",
    "MaxWords", "MinWords", "QuoteWrap", "RepeatQuestion", "StartWith",
    "TwoParts", "build_instruction", "check_loose",
    "IFEvalResult", "evaluate_model", "evaluate_responses",
]
