"""IFEval accuracy computation: strict/loose × prompt-level/instruction-level.

Mirrors the four numbers the paper reports in Table 3:

* **prompt-level strict** — fraction of prompts where *every* instruction
  passes its verifier on the raw response;
* **prompt-level loose** — same, but each instruction may pass on any of the
  standard loose transforms of the response;
* **instruction-level strict/loose** — fraction of individual instructions
  passed, pooled over all prompts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .instructions import check_loose

# Prompts are duck-typed: anything with ``.prompt`` and ``.instructions``
# (e.g. repro.data.ifeval_data.IFEvalPrompt) works, which also avoids a
# circular import between the data generators and the checkers they reuse.


@dataclass(frozen=True)
class IFEvalResult:
    """The four IFEval accuracies (fractions in [0, 1])."""

    prompt_strict: float
    prompt_loose: float
    instruction_strict: float
    instruction_loose: float

    def as_dict(self) -> dict:
        return {
            "prompt_strict": self.prompt_strict,
            "prompt_loose": self.prompt_loose,
            "instruction_strict": self.instruction_strict,
            "instruction_loose": self.instruction_loose,
        }


def evaluate_responses(prompts: Sequence,
                       responses: Sequence[str]) -> IFEvalResult:
    """Score pre-generated responses against their prompts' instructions."""
    if len(prompts) != len(responses):
        raise ValueError("responses must align with prompts")
    if not prompts:
        raise ValueError("empty prompt set")
    prompt_strict = prompt_loose = 0
    inst_strict = inst_loose = inst_total = 0
    for item, response in zip(prompts, responses):
        strict_flags = [ins.check(response) for ins in item.instructions]
        loose_flags = [check_loose(ins, response) for ins in item.instructions]
        inst_total += len(item.instructions)
        inst_strict += sum(strict_flags)
        inst_loose += sum(loose_flags)
        if all(strict_flags):
            prompt_strict += 1
        if all(loose_flags):
            prompt_loose += 1
    n = len(prompts)
    inst_total = max(inst_total, 1)
    return IFEvalResult(prompt_strict / n, prompt_loose / n,
                        inst_strict / inst_total, inst_loose / inst_total)


def _ifeval_item(prompt_text: str) -> str:
    """Worker-side greedy generation for one IFEval prompt."""
    from ...nn.infer import generate_text_fast
    from ...parallel import get_task_context

    ctx = get_task_context()
    return generate_text_fast(ctx["engine"], ctx["tokenizer"], prompt_text,
                              max_new_tokens=ctx["max_new_tokens"])


def evaluate_model(model, tokenizer, prompts: Sequence,
                   max_new_tokens: int = 40, workers=None,
                   obs=None) -> IFEvalResult:
    """Generate a response per prompt (greedy, like the paper) and score.

    ``workers`` > 1 generates responses in a
    :class:`~repro.parallel.WorkerPool` (engine fork-inherited); greedy
    decoding makes the responses — and all four accuracies — bit-identical
    to the serial path.
    """
    from ...nn.infer import InferenceEngine, generate_text_fast
    from ...parallel import WorkerPool, effective_workers, task_context

    engine = InferenceEngine(model)
    workers = effective_workers(workers)
    if workers > 1:
        with task_context(engine=engine, tokenizer=tokenizer,
                          max_new_tokens=max_new_tokens):
            pool_kwargs = {} if obs is None else {"obs": obs}
            with WorkerPool(workers, **pool_kwargs) as pool:
                responses = pool.map_chunked(_ifeval_item,
                                             [p.prompt for p in prompts])
    else:
        responses = [generate_text_fast(engine, tokenizer, p.prompt,
                                        max_new_tokens=max_new_tokens)
                     for p in prompts]
    return evaluate_responses(prompts, responses)
