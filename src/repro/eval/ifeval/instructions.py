"""Verifiable instructions, in the style of the IFEval benchmark.

Each :class:`Instruction` bundles three things:

* ``render()`` — the natural-language instruction text inserted into prompts;
* ``check(response)`` — a deterministic verifier, the defining feature of
  IFEval: compliance is decided by code, not by a judge model;
* ``make_compliant(answer)`` — rewrite a free-form answer into a compliant
  one, used to synthesise instruction-following *training* data (the
  substitute for the proprietary instruction datasets the paper laments).

Keeping the renderer, the verifier, and the compliant-rewriter in one object
guarantees the training data and the benchmark agree on what each
instruction means.

All text lives in the substrate's lowercase, whitespace-tokenised world, so
"words" are whitespace tokens throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple


def words(text: str) -> List[str]:
    """Whitespace tokenisation — the substrate's notion of words."""
    return text.split()


class Instruction:
    """Base class for verifiable instructions."""

    #: registry id, e.g. ``"start_with"``; set by subclasses.
    kind: str = ""

    def render(self) -> str:
        """The instruction text shown in a prompt."""
        raise NotImplementedError

    def check(self, response: str) -> bool:
        """True iff ``response`` complies with this instruction."""
        raise NotImplementedError

    def make_compliant(self, answer: str) -> str:
        """Rewrite ``answer`` so that :meth:`check` passes."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.render()!r})"


@dataclass(frozen=True, repr=False)
class StartWith(Instruction):
    """Response must begin with an exact phrase."""

    phrase: str
    kind = "start_with"

    def render(self) -> str:
        return f"begin your response with the phrase {self.phrase}"

    def check(self, response: str) -> bool:
        r, p = words(response), words(self.phrase)
        return len(r) >= len(p) and r[: len(p)] == p

    def make_compliant(self, answer: str) -> str:
        return f"{self.phrase} {answer}".strip()


@dataclass(frozen=True, repr=False)
class EndWith(Instruction):
    """Response must end with an exact word."""

    word: str
    kind = "end_with"

    def render(self) -> str:
        return f"end your response with the word {self.word}"

    def check(self, response: str) -> bool:
        r = words(response)
        return bool(r) and r[-1] == self.word

    def make_compliant(self, answer: str) -> str:
        return f"{answer} {self.word}".strip()


@dataclass(frozen=True, repr=False)
class IncludeWord(Instruction):
    """Response must contain a given word anywhere."""

    word: str
    kind = "include_word"

    def render(self) -> str:
        return f"include the word {self.word} in your response"

    def check(self, response: str) -> bool:
        return self.word in words(response)

    def make_compliant(self, answer: str) -> str:
        if self.check(answer):
            return answer
        return f"{self.word} {answer}".strip()


@dataclass(frozen=True, repr=False)
class AvoidWord(Instruction):
    """Response must not contain a given word."""

    word: str
    kind = "avoid_word"

    def render(self) -> str:
        return f"do not use the word {self.word} in your response"

    def check(self, response: str) -> bool:
        return self.word not in words(response)

    def make_compliant(self, answer: str) -> str:
        return " ".join(w for w in words(answer) if w != self.word)


@dataclass(frozen=True, repr=False)
class MaxWords(Instruction):
    """Response must be at most ``limit`` words long."""

    limit: int
    kind = "max_words"

    def render(self) -> str:
        return f"respond in at most {self.limit} words"

    def check(self, response: str) -> bool:
        return 0 < len(words(response)) <= self.limit

    def make_compliant(self, answer: str) -> str:
        return " ".join(words(answer)[: self.limit])


@dataclass(frozen=True, repr=False)
class MinWords(Instruction):
    """Response must be at least ``limit`` words long."""

    limit: int
    kind = "min_words"

    def render(self) -> str:
        return f"respond in at least {self.limit} words"

    def check(self, response: str) -> bool:
        return len(words(response)) >= self.limit

    def make_compliant(self, answer: str) -> str:
        w = words(answer)
        while len(w) < self.limit:
            w = w + ["indeed"]
        return " ".join(w)


@dataclass(frozen=True, repr=False)
class QuoteWrap(Instruction):
    """Response must be wrapped in double-quote tokens."""

    kind = "quote_wrap"

    def render(self) -> str:
        return "wrap your whole response in quotes"

    def check(self, response: str) -> bool:
        r = words(response)
        return len(r) >= 3 and r[0] == '"' and r[-1] == '"'

    def make_compliant(self, answer: str) -> str:
        return f'" {answer} "'


@dataclass(frozen=True, repr=False)
class TwoParts(Instruction):
    """Response must contain the separator word ``next`` between two parts."""

    kind = "two_parts"

    def render(self) -> str:
        return "give your response in two parts separated by the word next"

    def check(self, response: str) -> bool:
        r = words(response)
        return "next" in r[1:-1] if len(r) >= 3 else False

    def make_compliant(self, answer: str) -> str:
        w = words(answer)
        if len(w) < 2:
            return f"{answer} next {answer}".strip()
        mid = len(w) // 2
        return " ".join(w[:mid] + ["next"] + w[mid:])


@dataclass(frozen=True, repr=False)
class RepeatQuestion(Instruction):
    """Response must repeat the question text before answering."""

    question: str
    kind = "repeat_question"

    def render(self) -> str:
        return "repeat the question before you answer"

    def check(self, response: str) -> bool:
        r, q = words(response), words(self.question)
        return len(r) > len(q) and r[: len(q)] == q

    def make_compliant(self, answer: str) -> str:
        return f"{self.question} {answer}".strip()


# ---------------------------------------------------------------------------
# Loose evaluation transforms (IFEval's "loose" accuracy re-checks compliance
# after removing common harmless decorations from the response).
# ---------------------------------------------------------------------------

def _strip_first_word(response: str) -> str:
    return " ".join(words(response)[1:])


def _strip_last_word(response: str) -> str:
    return " ".join(words(response)[:-1])


def _strip_quotes(response: str) -> str:
    return " ".join(w for w in words(response) if w != '"')


def _strip_common_prefixes(response: str) -> str:
    r = words(response)
    for prefix in (["answer", ":"], ["note", ":"], ["response", ":"],
                   ["based", "on", "the", "context"]):
        if r[: len(prefix)] == prefix:
            return " ".join(r[len(prefix):])
    return response


LOOSE_TRANSFORMS: Tuple[Callable[[str], str], ...] = (
    lambda r: r,
    _strip_first_word,
    _strip_last_word,
    _strip_quotes,
    _strip_common_prefixes,
)


def check_loose(instruction: Instruction, response: str) -> bool:
    """Loose compliance: pass if any standard transform of the response passes."""
    return any(instruction.check(t(response)) for t in LOOSE_TRANSFORMS if t(response))


# ---------------------------------------------------------------------------
# Instruction pools used by the data generators.
# ---------------------------------------------------------------------------

START_PHRASES: Tuple[str, ...] = ("answer :", "note :", "based on the context")
END_WORDS: Tuple[str, ...] = ("done", "over", "thanks")
INCLUDE_WORDS: Tuple[str, ...] = ("indeed", "surely", "clearly")
MAX_LIMITS: Tuple[int, ...] = (6, 8, 10)

#: The full set of instruction kinds, grouped into two overlapping pools.
#: Pool "a" is what the general chat models are aligned on; pool "b" is the
#: (partially complementary) set mixed into the ChipNeMo-analog's DAFT data —
#: modelling the paper's observation that ChipNeMo's OASST/SteerLM data gave
#: it instruction knowledge *complementary* to the chat model's, so the merge
#: can beat both sources on IFEval (Section IV-D).
POOL_A_KINDS: Tuple[str, ...] = ("start_with", "end_with", "include_word",
                                 "quote_wrap", "max_words")
POOL_B_KINDS: Tuple[str, ...] = ("start_with", "include_word", "two_parts",
                                 "repeat_question", "end_with")


def build_instruction(kind: str, rng, question: str = "") -> Instruction:
    """Construct a random concrete instruction of the given kind."""
    if kind == "start_with":
        return StartWith(START_PHRASES[int(rng.integers(len(START_PHRASES)))])
    if kind == "end_with":
        return EndWith(END_WORDS[int(rng.integers(len(END_WORDS)))])
    if kind == "include_word":
        return IncludeWord(INCLUDE_WORDS[int(rng.integers(len(INCLUDE_WORDS)))])
    if kind == "avoid_word":
        return AvoidWord("maybe")
    if kind == "max_words":
        return MaxWords(int(MAX_LIMITS[int(rng.integers(len(MAX_LIMITS)))]))
    if kind == "min_words":
        return MinWords(4)
    if kind == "quote_wrap":
        return QuoteWrap()
    if kind == "two_parts":
        return TwoParts()
    if kind == "repeat_question":
        if not question:
            raise ValueError("repeat_question requires the question text")
        return RepeatQuestion(question)
    raise KeyError(f"unknown instruction kind {kind!r}")


ALL_KINDS: Tuple[str, ...] = ("start_with", "end_with", "include_word", "avoid_word",
                              "max_words", "min_words", "quote_wrap", "two_parts",
                              "repeat_question")

#: Pairs of instruction kinds that cannot be jointly satisfied: word-count
#: limits clash with structure-adding instructions, and instructions that
#: claim the first or last token clash with each other.  The data generators
#: never combine conflicting kinds in one prompt (real IFEval likewise avoids
#: contradictory instruction pairs).
_LIMIT_KINDS = frozenset({"max_words", "min_words"})
_LIMIT_COMPATIBLE = frozenset({"start_with", "include_word", "avoid_word"})
_CONFLICTS = {
    "quote_wrap": frozenset({"start_with", "end_with", "repeat_question"}),
    "start_with": frozenset({"repeat_question", "quote_wrap"}),
    "end_with": frozenset({"quote_wrap"}),
    "repeat_question": frozenset({"start_with", "quote_wrap"}),
}


def _conflicts(a: str, b: str) -> bool:
    if a in _LIMIT_KINDS:
        return b in _LIMIT_KINDS or b not in _LIMIT_COMPATIBLE
    if b in _LIMIT_KINDS:
        return a not in _LIMIT_COMPATIBLE
    return b in _CONFLICTS.get(a, frozenset())


def filter_compatible(kinds: Sequence[str]) -> List[str]:
    """Drop duplicate or mutually contradictory kinds, keeping earlier ones."""
    kept: List[str] = []
    for kind in kinds:
        if kind in kept:
            continue
        if any(_conflicts(k, kind) or _conflicts(kind, k) for k in kept):
            continue
        kept.append(kind)
    return kept
