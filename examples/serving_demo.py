"""Serving subsystem tour: concurrent traffic, priorities, and chat sessions.

Simulates the deployment shape ChipAlign targets — many engineers asking an
assistant questions at once — without needing a trained checkpoint: a
random-weight nano backbone serves a synthetic burst through the continuous
micro-batching scheduler, then the demo walks through priority scheduling,
deadline expiry, and a two-turn chat session whose KV state is carried
between turns.

Run:  python examples/serving_demo.py
"""

from repro.nn.transformer import TransformerLM, preset_config
from repro.serve import (InProcessServer, SamplingParams, ServeConfig,
                         WorkloadSpec, format_benchmark_report,
                         run_serve_benchmark, synthetic_prompts)


def banner(title):
    print(f"\n=== {title} ===")


def main():
    model = TransformerLM(preset_config("nano", vocab_size=128, seed=0))

    banner("1. serial vs batched+prefix-cached throughput")
    spec = WorkloadSpec(n_requests=16, shared_prefix_tokens=120,
                        unique_tokens=12, max_new_tokens=24,
                        vocab_size=100, seed=3)
    result = run_serve_benchmark(model, spec,
                                 config=ServeConfig(max_batch_size=16))
    print(format_benchmark_report(result, spec))

    banner("2. priorities: a late VIP request overtakes the queue")
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1))
    prompts = synthetic_prompts(spec)
    params = SamplingParams(max_new_tokens=4)
    bulk = [server.submit(p, params=params) for p in prompts[:3]]
    vip = server.submit(prompts[3], params=params, priority=10)
    finish_order = []
    while not server.idle:
        finish_order.extend(c.request_id for c in server.step())
    print(f"submitted: {bulk + [vip]} (last one priority=10)")
    print(f"finished : {finish_order}")
    assert finish_order[0] == vip

    banner("3. deadlines: stale requests expire instead of wasting compute")
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1))
    keep = server.submit(prompts[0], params=params)
    drop = server.submit(prompts[1], params=params, deadline=0.0)
    server.run_until_idle()
    print(f"{keep}: {server.result(keep).status:<8} "
          f"({server.result(keep).finish_reason})")
    print(f"{drop}: {server.result(drop).status:<8} "
          f"({server.result(drop).finish_reason})")

    banner("4. chat sessions: turn 2 reuses turn 1's KV state")
    server = InProcessServer(model, config=ServeConfig(max_batch_size=4))
    turn1 = list(prompts[0][:40])
    first = server.chat("alice", turn1, params=SamplingParams(max_new_tokens=8))
    # The canonical grammar replays the conversation, so turn 2's prompt
    # extends turn 1's tokens — exactly what the session store caches.
    turn2 = turn1 + list(first.token_ids) + list(prompts[1][:10])
    second = server.chat("alice", turn2, params=SamplingParams(max_new_tokens=8))
    print(f"turn 1: prefilled {first.prefill_tokens} tokens, "
          f"reused {first.cached_prefix_tokens}")
    print(f"turn 2: prefilled {second.prefill_tokens} tokens, "
          f"reused {second.cached_prefix_tokens} from the session")

    banner("5. instrumentation snapshot")
    for key, value in sorted(server.metrics_snapshot().items()):
        print(f"{key:<24} {value}")


if __name__ == "__main__":
    main()
