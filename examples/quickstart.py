"""Quickstart: merge two specialised language models with ChipAlign.

Trains two tiny fine-tunes of a common base — one aligned to follow
instructions, one adapted to a (miniature) chip domain — then fuses them
with geodesic interpolation and shows that the merged model exhibits both
capabilities.  Runs from scratch in under a minute on a laptop CPU; no
cached checkpoints needed.

Run:  python examples/quickstart.py
"""

from repro.core import ChipAlignMerger, summarize_geometry
from repro.nn import (TrainConfig, TransformerConfig, TransformerLM,
                      WordTokenizer, generate_text)
from repro.pipelines import pretrain, sft

VOCAB = ("question : assistant instruction the color of sky grass is blue green "
         "end your response with word done chip has four cores two caches").split()


def build_models():
    tokenizer = WordTokenizer(VOCAB)
    config = TransformerConfig(vocab_size=tokenizer.vocab_size, dim=32,
                               n_layers=2, n_heads=4, max_seq_len=48, seed=0)

    print("1. pretraining a tiny base model ...")
    base = TransformerLM(config)
    sentences = ["the color of the sky is blue", "the color of grass is green",
                 "the chip has four cores", "the chip has two caches"] * 4
    pretrain(base, tokenizer, sentences, TrainConfig(lr=3e-3, epochs=15, batch_size=8))

    print("2. instruction-tuning the chat branch ...")
    instruct = base.clone()
    align = []
    for q, a in [("the color of the sky", "the color of the sky is blue"),
                 ("the color of grass", "the color of grass is green")]:
        align.append((f"question : {q} instruction : end your response with "
                      f"the word done assistant :", a + " done"))
        align.append((f"question : {q} assistant :", a))
    sft(instruct, tokenizer, align * 6, TrainConfig(lr=2e-3, epochs=25, batch_size=8))

    print("3. domain-tuning the chip branch (no instruction data) ...")
    chip = instruct.clone()
    domain = [("question : the chip cores assistant :", "the chip has four cores"),
              ("question : the chip caches assistant :", "the chip has two caches")]
    sft(chip, tokenizer, domain * 8, TrainConfig(lr=1.5e-3, epochs=20, batch_size=8))
    return tokenizer, instruct, chip


def probe(model, tokenizer, label):
    aligned_prompt = ("question : the color of the sky instruction : end your "
                      "response with the word done assistant :")
    domain_prompt = "question : the chip cores assistant :"
    aligned = generate_text(model, tokenizer, aligned_prompt, max_new_tokens=10)
    domain = generate_text(model, tokenizer, domain_prompt, max_new_tokens=8)
    follows = "yes" if aligned.split()[-1:] == ["done"] else "NO"
    knows = "yes" if "four cores" in domain else "NO"
    print(f"{label:>10}: follows instruction? {follows:<3} | knows the domain? {knows:<3}"
          f"   ({aligned!r} / {domain!r})")


def main():
    tokenizer, instruct, chip = build_models()

    print("\n4. weight-space geometry of the two branches:")
    geometry = summarize_geometry(chip.state_dict(), instruct.state_dict())
    print(f"   mean angle between weights: {geometry['angle_mean']:.3f} rad, "
          f"max {geometry['angle_max']:.3f} rad")

    print("\n5. ChipAlign geodesic merge at the paper's lambda = 0.6 ...\n")
    merged = ChipAlignMerger(lam=0.6).merge_models(chip, instruct)

    probe(instruct, tokenizer, "instruct")
    probe(chip, tokenizer, "chip")
    probe(merged, tokenizer, "chipalign")
    print("\nThe merged model inherits instruction alignment from the instruct "
          "branch and domain knowledge from the chip branch.")


if __name__ == "__main__":
    main()
