"""Response casebook — the qualitative comparisons of Figures 5 and 6.

Prints side-by-side model responses for one OpenROAD QA prompt (Figure 5)
and one industrial BUILD prompt (Figure 6), with the verifiable-instruction
compliance and judge verdicts annotated, reproducing the paper's qualitative
argument: the chat model is instruction-compliant but domain-ignorant, the
chip model is knowledgeable but non-compliant, and ChipAlign is both.

Run:  python examples/response_casebook.py
"""

from repro.data.industrial_qa import REFUSAL, eval_items
from repro.data.openroad_qa import eval_triplets
from repro.eval import (INDUSTRIAL_INSTRUCTIONS, OPENROAD_INSTRUCTIONS,
                        LMAnswerer, ReferenceJudge, golden_reference, rouge_l)
from repro.eval.harness import OPENROAD_PREFIX
from repro.pipelines import GRANDE_LAMBDA, OPENROAD_LAMBDA, default_zoo


def openroad_case(zoo):
    print("=" * 72)
    print("FIGURE 5 CASE — OpenROAD QA (micro family)")
    print("=" * 72)
    triplet = eval_triplets()[0]
    print(f"context : {triplet.context}")
    print(f"question: {triplet.question}")
    print("instructions: " + "; ".join(
        i.render() if hasattr(i, "render") else i for i in OPENROAD_INSTRUCTIONS))
    reference = golden_reference(triplet.answer, OPENROAD_INSTRUCTIONS)
    print(f"golden  : {reference}\n")
    models = [
        ("Instruct", zoo.get("micro", "instruct")),
        ("EDA", zoo.chip_model("micro")),
        ("ChipAlign", zoo.merged("micro", "chipalign", lam=OPENROAD_LAMBDA)),
    ]
    for name, model in models:
        answerer = LMAnswerer(model, zoo.tokenizer)
        response = answerer.answer(triplet.question, context=triplet.context,
                                   instructions=OPENROAD_INSTRUCTIONS)
        compliant = "follows prefix" if OPENROAD_PREFIX.check(response) \
            else "IGNORES prefix instruction"
        score = rouge_l(response, reference).fmeasure
        print(f"[{name:>9}] rougeL={score:.2f} ({compliant})\n            {response}\n")


def industrial_case(zoo):
    print("=" * 72)
    print("FIGURE 6 CASE — industrial BUILD QA (grande family)")
    print("=" * 72)
    judge = ReferenceJudge()
    item = next(i for i in eval_items()
                if i.category == "build" and i.answer != REFUSAL)
    print(f"context : {item.context}")
    print(f"question: {item.question}")
    golden = golden_reference(item.answer, INDUSTRIAL_INSTRUCTIONS)
    print(f"golden  : {golden}\n")
    models = [
        ("Chat", zoo.get("grande", "instruct")),
        ("ChipNeMo", zoo.get("grande", "chipnemo")),
        ("ChipAlign", zoo.merged("grande", "chipalign", lam=GRANDE_LAMBDA)),
    ]
    for name, model in models:
        answerer = LMAnswerer(model, zoo.tokenizer)
        response = answerer.answer(item.question, context=item.context,
                                   instructions=INDUSTRIAL_INSTRUCTIONS)
        verdict = judge.grade(response, golden, item.context, item.question)
        grounded = "supported by context" if verdict.grounding >= 0.7 \
            else "NOT supported by context"
        print(f"[{name:>9}] evaluation score: {verdict.score} ({grounded})\n"
              f"            {response}\n")


def main():
    print("loading the model zoo (first run trains the models) ...")
    zoo = default_zoo(verbose=True)
    openroad_case(zoo)
    industrial_case(zoo)


if __name__ == "__main__":
    main()
