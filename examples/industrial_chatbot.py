"""Industrial chip-QA chatbot: the Figure-6 scenario end to end.

Loads the grande family (LLaMA2-70B analog), builds the ChipAlign merge, and
walks through single-turn, multi-turn, and unanswerable (refusal) prompts,
grading every response with the reference judge — including the side-by-side
Chat / ChipNeMo / ChipAlign comparison the paper's Figure 6 shows.

Run:  python examples/industrial_chatbot.py
"""

from repro.data.industrial_qa import REFUSAL, eval_items, multi_turn_items
from repro.eval import (INDUSTRIAL_INSTRUCTIONS, LMAnswerer, ReferenceJudge,
                        golden_reference)
from repro.pipelines import GRANDE_LAMBDA, default_zoo


def main():
    print("loading the model zoo (first run trains the models, ~8 min) ...")
    zoo = default_zoo(verbose=True)
    judge = ReferenceJudge()
    contestants = [
        ("Chat", LMAnswerer(zoo.get("grande", "instruct"), zoo.tokenizer)),
        ("ChipNeMo", LMAnswerer(zoo.get("grande", "chipnemo"), zoo.tokenizer)),
        ("ChipAlign", LMAnswerer(zoo.merged("grande", "chipalign",
                                            lam=GRANDE_LAMBDA), zoo.tokenizer)),
    ]

    items = eval_items()
    # Like the paper's Figure 6, showcase an item where the models separate:
    # pick the first answerable item the merged model answers well.
    align_answerer = contestants[2][1]
    answerable = None
    for item in items:
        if item.answer == REFUSAL:
            continue
        response = align_answerer.answer(item.question, context=item.context,
                                         instructions=INDUSTRIAL_INSTRUCTIONS)
        golden = golden_reference(item.answer, INDUSTRIAL_INSTRUCTIONS)
        if judge.grade(response, golden, item.context, item.question).score >= 75:
            answerable = item
            break
    if answerable is None:
        answerable = next(i for i in items if i.answer != REFUSAL)
    unanswerable = next(i for i in items if i.answer == REFUSAL)

    print("\n=== single-turn question (answer is in the chunks) ===")
    print(f"Q: {answerable.question}")
    print(f"context: {answerable.context}")
    for name, answerer in contestants:
        response = answerer.answer(answerable.question, context=answerable.context,
                                   instructions=INDUSTRIAL_INSTRUCTIONS)
        golden = golden_reference(answerable.answer, INDUSTRIAL_INSTRUCTIONS)
        verdict = judge.grade(response, golden, answerable.context,
                              answerable.question)
        print(f"{name:>10}: [{verdict.score:>3}] {response}")

    print("\n=== unanswerable question (chunks are off-topic; Figure 6) ===")
    print(f"Q: {unanswerable.question}")
    print(f"context: {unanswerable.context}")
    for name, answerer in contestants:
        response = answerer.answer(unanswerable.question,
                                   context=unanswerable.context,
                                   instructions=INDUSTRIAL_INSTRUCTIONS)
        golden = golden_reference(REFUSAL, INDUSTRIAL_INSTRUCTIONS)
        verdict = judge.grade(response, golden, unanswerable.context,
                              unanswerable.question)
        print(f"{name:>10}: [{verdict.score:>3}] {response}")

    print("\n=== multi-turn conversation ===")
    conversation = multi_turn_items()[0]
    print(f"turn 1: {conversation.first_question}")
    print(f"        -> {conversation.first_answer}")
    print(f"turn 2: {conversation.question}")
    for name, answerer in contestants:
        response = answerer.answer(
            conversation.question, context=conversation.context,
            instructions=INDUSTRIAL_INSTRUCTIONS,
            history=[(conversation.first_question, conversation.first_answer)])
        golden = golden_reference(conversation.answer, INDUSTRIAL_INSTRUCTIONS)
        verdict = judge.grade(response, golden, conversation.context,
                              conversation.question)
        print(f"{name:>10}: [{verdict.score:>3}] {response}")


if __name__ == "__main__":
    main()
