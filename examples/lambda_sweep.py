"""Sensitivity of ChipAlign to λ — Figure 8 as a runnable script.

Sweeps λ from 0 (pure instruction model) to 1 (pure chip model) on the
OpenROAD QA benchmark for the nano family and prints an ASCII rendition of
the paper's Figure 8 curve.

Run:  python examples/lambda_sweep.py
"""

from repro.data import eval_triplets
from repro.eval import LMAnswerer, run_openroad
from repro.pipelines import default_zoo


def main():
    print("loading the model zoo (first run trains the models) ...")
    zoo = default_zoo(verbose=True)
    triplets = eval_triplets()[:45]
    lams = [round(0.1 * i, 1) for i in range(11)]

    print(f"\nsweeping lambda over {lams} on {len(triplets)} OpenROAD QA items ...")
    series = []
    for lam in lams:
        merged = zoo.merged("nano", "chipalign", lam=lam)
        report = run_openroad(LMAnswerer(merged, zoo.tokenizer), triplets,
                              context_mode="golden")
        series.append(report.overall)
        print(f"  lambda={lam:.1f}  rougeL={report.overall:.3f}")

    print("\nROUGE-L vs lambda (0 = instruct model, 1 = chip model):")
    top = max(series)
    for lam, value in zip(lams, series):
        bar = "#" * int(round(value / top * 48))
        marker = "  <- paper's recommended default" if lam == 0.6 else ""
        print(f"  {lam:.1f} |{bar:<48}| {value:.3f}{marker}")

    best = lams[series.index(max(series))]
    print(f"\ninterior peak at lambda={best}; endpoints: "
          f"instruct={series[0]:.3f}, chip={series[-1]:.3f}")


if __name__ == "__main__":
    main()
