"""OpenROAD-style EDA assistant: ChipAlign model + RAG over documentation.

Loads (or trains, on first run) the micro family from the model zoo, merges
the EDA and instruct models with ChipAlign, wires the merged model to the
three-stage retrieval pipeline, and answers grounded tool-usage questions
under the Figure-5-style instruction block — the deployment the paper's
introduction motivates.

Run:  python examples/openroad_assistant.py
"""

from repro.data.openroad_qa import documentation_corpus, eval_triplets
from repro.eval import LMAnswerer, OPENROAD_INSTRUCTIONS, golden_reference, rouge_l
from repro.pipelines import OPENROAD_LAMBDA, default_zoo
from repro.rag import RagPipeline


def main():
    print("loading the model zoo (first run trains the models, ~2 min) ...")
    zoo = default_zoo(verbose=True)
    merged = zoo.merged("micro", "chipalign", lam=OPENROAD_LAMBDA)
    assistant = LMAnswerer(merged, zoo.tokenizer, name="micro-ChipAlign")
    retriever = RagPipeline(documentation_corpus())

    questions = [
        "what does the command global_place do",
        "what is the default value of density for global_place",
        "how can i view the setup and hold timing paths in the orflow gui",
        "what is the first step to install orflow",
    ]
    print("\n--- EDA assistant (RAG-grounded, instruction-following) ---")
    for question in questions:
        retrieved = retriever.retrieve(question)
        answer = assistant.answer(question, context=retrieved.context,
                                  instructions=OPENROAD_INSTRUCTIONS)
        print(f"\nQ: {question}")
        print(f"  retrieved doc ids: {retrieved.doc_ids}")
        print(f"A: {answer}")

    print("\n--- scoring against the 90-item benchmark (golden answers) ---")
    triplets = eval_triplets()[:20]
    scores = []
    for triplet in triplets:
        context = retriever.retrieve(triplet.question).context
        answer = assistant.answer(triplet.question, context=context,
                                  instructions=OPENROAD_INSTRUCTIONS)
        reference = golden_reference(triplet.answer, OPENROAD_INSTRUCTIONS)
        scores.append(rouge_l(answer, reference).fmeasure)
    print(f"mean ROUGE-L over {len(triplets)} RAG-context items: "
          f"{sum(scores) / len(scores):.3f}")


if __name__ == "__main__":
    main()
