"""Network front door tour: sockets, streaming, tenancy, and drain.

Brings up a real TCP server (`repro.serve.net`) on an ephemeral loopback
port with two tenants — a rate-limited "eng" tenant and a heavier "batch"
tenant — then walks through the protocol from the client side: a blocking
completion, a token-by-token stream, a shed with a retry hint when the
rate limit bites, the live health/metrics verbs, and finally a graceful
drain that finishes in-flight work while refusing new requests.

No trained checkpoint needed: a random-weight nano backbone exercises the
transport end to end.

Run:  python examples/serve_net_demo.py
"""

import threading
import time

from repro.nn.transformer import TransformerLM, preset_config
from repro.serve import ServeConfig, WorkloadSpec, synthetic_prompts
from repro.serve.net import (NetClient, NetServerConfig, NetServerThread,
                             ShedError, TenantConfig)


def banner(title):
    print(f"\n=== {title} ===")


def main():
    model = TransformerLM(preset_config("nano", vocab_size=128, seed=0))
    net_config = NetServerConfig(tenants=(
        TenantConfig(name="eng", rate=4.0, burst=2, weight=1.0),
        TenantConfig(name="batch", rate=float("inf"), burst=64, weight=4.0),
    ))
    handle = NetServerThread(model, serve_config=ServeConfig(max_batch_size=8),
                             net_config=net_config)
    host, port = handle.start()
    print(f"serving on {host}:{port} (ephemeral port, two tenants)")

    prompts = synthetic_prompts(WorkloadSpec(
        n_requests=8, shared_prefix_tokens=24, unique_tokens=6,
        max_new_tokens=12, vocab_size=100, seed=7))

    try:
        banner("1. blocking completion over the socket")
        with NetClient(host, port, tenant="eng") as client:
            result = client.complete(prompt_ids=prompts[0],
                                     params={"max_new_tokens": 12})
            print(f"status={result.status} tokens={result.token_ids}")

        banner("2. token-by-token streaming")
        with NetClient(host, port, tenant="batch") as client:
            for event in client.stream(prompt_ids=prompts[1],
                                       params={"max_new_tokens": 8}):
                if event["event"] == "token":
                    print(event["token"], end=" ", flush=True)
            print()

        banner("3. admission control: the rate limit sheds with a hint")
        with NetClient(host, port, tenant="eng") as client:
            outcomes = []
            for prompt in prompts[2:7]:   # burst of 5 into burst=2, rate=4/s
                try:
                    client.complete(prompt_ids=prompt,
                                    params={"max_new_tokens": 4})
                    outcomes.append("finished")
                except ShedError as exc:
                    outcomes.append(f"shed({exc.code}, "
                                    f"retry {exc.retry_after_s:.2f}s)")
            for line in outcomes:
                print(line)

        banner("4. health + per-tenant metrics")
        with NetClient(host, port) as client:
            health = client.health()
            print({k: health[k] for k in ("status", "running",
                                          "admission_queued", "connections")})
            tenants = client.server_metrics()["admission"]["tenants"]
            for name, stats in tenants.items():
                print(f"{name:>6}: accepted={stats['accepted']} "
                      f"shed={stats['shed']} finished={stats['finished']}")

        banner("5. graceful drain: finish admitted work, refuse new work")
        main_client = NetClient(host, port, tenant="batch")
        ids = [main_client.submit(prompt_ids=p,
                                  params={"max_new_tokens": 96}, stream=True)
               for p in prompts[:3]]
        assert main_client.wait_accepted(ids) == ids   # admitted before drain
        ledger = {}
        drainer = threading.Thread(
            target=lambda: ledger.update(handle.drain()), daemon=True)
        drainer.start()
        time.sleep(0.01)
        # New work on the still-open connection is refused explicitly.
        probe_id = main_client.submit(prompt_ids=prompts[7],
                                      params={"max_new_tokens": 2})
        try:
            main_client.wait(probe_id)
            print("probe: finished (drain had already completed)")
        except ShedError as exc:
            print(f"probe: refused with code={exc.code!r}")
        except Exception as exc:
            print(f"probe: refused ({type(exc).__name__})")
        results = [main_client.wait(i) for i in ids]
        drainer.join(30.0)
        main_client.close()
        print(f"in-flight finished: "
              f"{sum(r.status == 'finished' for r in results)}/{len(ids)}")
        print(f"ledger: submitted={ledger['submitted']} "
              f"finished={ledger['finished']} "
              f"conservation_ok={bool(ledger['conservation_ok'])}")
    finally:
        handle.stop()
    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()
