"""Serving — K λ-variants from one arena-resident plan vs K full copies.

The λ-fleet's acceptance workload: a mixed-sampling burst spread across
K = 8 merged-model variants (scalar λ grid, a layerwise ramp, a Karcher
midpoint), answered by a :class:`~repro.serve.lambda_fleet.LambdaFleetServer`
materializing every variant lazily from one shared
:class:`~repro.core.merge_engine.MergePlan`, and by K fully-materialized
per-variant oracles.

Unconditional gates: all K variants stay resident at <= ~2x one model's
arena bytes (vs the Kx naive deployment), every routed token stream is
byte-identical to its oracle in exact mode, scalar/layerwise cold
materialization stays within a small multiple of ``engine.merge``, no
replica respawns, no leaked shared-memory segments.  The aggregate
concurrent-over-sequential throughput target is core-count-conditioned
exactly like ``bench_fleet``; a starved box degrades it to a sanity
bound.  The report is written to ``BENCH_lambda.json`` at the repo root
when ``REPRO_BENCH_SNAPSHOT=1``.
"""

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import FULL, print_result
from repro.parallel import parallel_available
from repro.serve.lambda_bench import (format_lambda_report,
                                      run_lambda_benchmark,
                                      write_lambda_snapshot)

#: Where the perf-trajectory snapshot lands (repo root, committed).
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_lambda.json"

#: On a core-starved box the K variant replicas time-slice; the fleet arm
#: still must not collapse under routing/IPC overhead vs the sequential
#: oracles.
MIN_STARVED_RATIO = 0.33


def test_lambda_fleet_memory_parity_and_throughput(benchmark):
    if not parallel_available():
        pytest.skip("platform cannot fork replica processes")
    result = run_lambda_benchmark(
        backbone="nano", n_variants=8,
        requests_per_variant=3 if FULL else 2,
        max_new_tokens=16, repeats=3 if FULL else 2, seed=0)
    print_result("Serve: 8-variant lambda-fleet vs materialized oracles "
                 "(nano backbone)", format_lambda_report(result))
    print_result("Serve: per-variant traffic",
                 json.dumps(result["variants"], indent=2, sort_keys=True))
    if os.environ.get("REPRO_BENCH_SNAPSHOT", "0") == "1":
        write_lambda_snapshot(result, SNAPSHOT)

    memory = result["memory"]
    assert memory["plan_over_model"] <= memory["limit"], (
        f"plan residency {memory['plan_over_model']:.2f}x one model exceeds "
        f"the {memory['limit']:.1f}x gate ({memory['plan_bytes']} bytes)")
    assert result["parity_ok"], \
        "a lazy-materialized variant diverged from its fully-built oracle"
    cold = result["cold"]
    assert cold["worst_gated_ratio"] <= cold["limit"], (
        f"cold materialization {cold['worst_gated_ratio']:.2f}x engine.merge "
        f"exceeds the {cold['limit']:.1f}x gate")
    assert result["respawns"] == 0, \
        f"replicas died during a healthy benchmark: {result['respawns']}"
    assert result["router"]["conservation_ok"] == 1, result["router"]
    assert result["leaked_segments"] == [], (
        f"leaked shared-memory segments: {result['leaked_segments']}")
    if result["target_applies"]:
        assert result["speedup"] >= result["speedup_target"], (
            f"expected >= {result['speedup_target']}x concurrent-over-"
            f"sequential tokens/sec at {result['replicas']} replicas on "
            f"{result['cpu_count']} cores, got {result['speedup']:.2f}x")
    else:
        assert result["speedup"] >= MIN_STARVED_RATIO, (
            f"variant-fleet overhead out of bounds on a starved machine "
            f"({result['cpu_count']} core(s)): {result['speedup']:.2f}x")

    benchmark(lambda: run_lambda_benchmark(
        backbone="nano", n_variants=3, requests_per_variant=2,
        max_new_tokens=8, repeats=1, seed=0))
