"""Figure 2 — the capability radar: Chat vs ChipNeMo vs ChipAlign.

Seven axes (IFEval strict/loose, industrial single/multi, MCQ scripts /
bugs / circuits), min-max normalised per axis as in the paper.  Expected
shape: Chat hugs the instruction axes, ChipNeMo hugs the domain axes, and
ChipAlign's polygon covers (most of) both.
"""

from benchmarks.conftest import print_result
from repro.pipelines.experiment import run_fig2


def _ascii_radar(result):
    lines = []
    for label in result.normalized:
        bars = []
        for axis in result.axes:
            value = result.normalized[label][axis]
            bars.append(f"{axis[:12]:>17} |{'#' * int(round(value * 20)):<20}| {value:.2f}")
        lines.append(f"--- {label} ---\n" + "\n".join(bars))
    return "\n".join(lines)


def test_fig2_radar(zoo, benchmark):
    result = run_fig2(zoo=zoo)
    print_result("Figure 2 (normalised capability axes)", result.table)
    print(_ascii_radar(result))

    align = result.normalized["ChipAlign"]
    chat = result.normalized["Chat"]
    nemo = result.normalized["ChipNeMo"]
    # ChipAlign's polygon dominates on combined coverage: the minimum over
    # all axes must exceed both sources' minima (the radar's visual message).
    assert min(align.values()) >= min(chat.values())
    assert min(align.values()) >= min(nemo.values())

    # Timed unit: the normalisation itself is trivial; time a single-model
    # MCQ pass instead (one radar axis).
    from repro.data import mcq_items
    from repro.eval import evaluate_mcq

    items = mcq_items()[:10]
    model = zoo.merged("grande", "chipalign")
    benchmark(lambda: evaluate_mcq(model, zoo.tokenizer, items))
