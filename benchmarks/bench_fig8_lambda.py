"""Figure 8 — sensitivity of ChipAlign to its single hyperparameter λ.

OpenROAD QA ROUGE-L as λ sweeps from 0 (instruction model) to 1 (chip
model) for both OpenROAD families.  Expected shape (paper): a fast rise from
the λ=0 endpoint, an interior peak (paper: λ=0.6), and a decline toward the
λ=1 endpoint's level.
"""

import numpy as np

from benchmarks.conftest import FULL, MAX_ITEMS, print_result
from repro.pipelines.experiment import run_fig8


def _ascii_series(lams, series, width=40):
    hi = max(series) or 1.0
    return "\n".join(
        f"lam={lam:.1f} |{'#' * int(round(v / hi * width)):<{width}}| {v:.3f}"
        for lam, v in zip(lams, series))


def test_fig8_lambda_sensitivity(zoo, benchmark):
    lams = [round(0.1 * i, 1) for i in range(11)] if FULL else \
        [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    result = run_fig8(families=("nano", "micro"), lams=lams, zoo=zoo,
                      max_items=MAX_ITEMS)
    print_result("Figure 8 (ROUGE-L vs lambda)", result.table)
    for family in result.scores:
        print(f"\n--- {family} ---")
        print(_ascii_series(result.lams, result.scores[family]))

    for family, series in result.scores.items():
        interior_best = max(series[1:-1])
        # The paper's shape: some interior merge beats the instruct endpoint
        # decisively and at least matches the chip endpoint.
        assert interior_best > series[0] + 0.02, family
        assert interior_best >= series[-1] - 0.01, family

    # Timed unit: one merge + 5-item evaluation at lambda=0.6.
    from repro.data import eval_triplets
    from repro.eval import LMAnswerer, run_openroad

    triplets = eval_triplets()[:5]

    def merge_and_eval():
        model = zoo.merged("nano", "chipalign", lam=0.6)
        return run_openroad(LMAnswerer(model, zoo.tokenizer), triplets)

    benchmark(merge_and_eval)
