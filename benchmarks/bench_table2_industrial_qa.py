"""Table 2 — GPT-4-style judge scores on industrial production-level chip QA.

Single- and multi-turn settings across ARCH/BUILD/LSF/TESTGEN for the
grande family (↔ LLaMA2-70B).  Expected shape (paper): ChipNeMo ≫ Chat; the
ChipAlign merge recovers alignment while staying at (our substrate: near)
ChipNeMo's domain level.  EXPERIMENTS.md records where the substrate-scale
optimum λ deviates from the paper's 0.6.
"""

from benchmarks.conftest import print_result
from repro.data.industrial_qa import eval_items
from repro.eval import run_industrial
from repro.pipelines.experiment import GRANDE_LAMBDA, run_table2


def test_table2_industrial_qa(zoo, benchmark):
    result = run_table2(zoo=zoo)
    print_result("Table 2 (industrial chip QA, judge scores)", result.table)

    chat = result.scores["LLaMA2-70B-Chat (grande-instruct)"]
    nemo = result.scores["LLaMA2-70B-ChipNeMo (grande-chipnemo)"]
    align = result.scores[f"LLaMA2-70B-ChipAlign (lam={GRANDE_LAMBDA})"]
    # Paper orderings that must hold: the chip model dominates chat, and the
    # merged model stays in the chip model's league (vs chat's collapse).
    assert nemo["single"]["all"] > chat["single"]["all"]
    assert align["single"]["all"] > chat["single"]["all"]
    assert align["single"]["all"] >= 0.7 * nemo["single"]["all"], \
        "merge must retain the bulk of the domain capability"

    # Timed unit: single-turn evaluation of the merged model on 10 items.
    from repro.eval import LMAnswerer

    answerer = LMAnswerer(zoo.merged("grande", "chipalign", lam=GRANDE_LAMBDA),
                          zoo.tokenizer)
    items = eval_items()[:10]
    benchmark(lambda: run_industrial(answerer, items))
