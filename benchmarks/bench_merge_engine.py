"""Incremental λ-sweep merge engine — plan once, evaluate per λ.

The acceptance workload from ISSUE 2: an 11-point λ sweep over the grande
backbone (the paper's Figure 8 grid).  The naive baseline re-runs the full
per-tensor :func:`~repro.core.geodesic.geodesic_merge` — float64
conversion, sphere projections, norms, and angles — for every λ, exactly
what :func:`~repro.core.analysis.interpolation_path` and the figure-8
runner did before the engine existed.  The engine builds one
:class:`~repro.core.merge_engine.MergePlan` and evaluates each λ with only
coefficient math plus a fused ``(L, 2) @ (2, n)`` multiply-add per tensor.

Asserts the headline claim: >= 3x wall-clock over the naive loop with
outputs ``np.allclose`` (rtol 1e-10) at every λ point.
"""

import json
import time
from collections import OrderedDict

import numpy as np

from benchmarks.conftest import print_result
from repro.core.geodesic import geodesic_merge
from repro.core.merge_engine import GeodesicMergeEngine
from repro.nn.transformer import TransformerLM, preset_config
from repro.obs import Observability

#: The acceptance grid: Figure 8's 11 λ points.
LAMS = [i / 10 for i in range(11)]

#: Interleaved timing repeats (best-of) to damp machine-noise dips.
REPEATS = 5


def _model_pair():
    chip = TransformerLM(preset_config("grande", vocab_size=512, seed=0))
    instruct = TransformerLM(preset_config("grande", vocab_size=512, seed=1))
    return chip.state_dict(), instruct.state_dict()


def _naive_sweep(chip, instruct):
    return [OrderedDict((key, geodesic_merge(chip[key], instruct[key], lam))
                        for key in chip) for lam in LAMS]


def _engine_sweep(chip, instruct):
    return GeodesicMergeEngine(chip, instruct).sweep(LAMS)


def test_engine_sweep_beats_naive_loop(benchmark):
    chip, instruct = _model_pair()
    n_params = sum(w.size for w in chip.values())

    # Warm-up (allocator, BLAS), then interleaved best-of so both sides
    # sample the same CPU-frequency/cache conditions.
    _naive_sweep(chip, instruct)
    _engine_sweep(chip, instruct)
    naive_times, engine_times = [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        naive_result = _naive_sweep(chip, instruct)
        naive_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        engine_result = _engine_sweep(chip, instruct)
        engine_times.append(time.perf_counter() - start)
    naive_t, engine_t = min(naive_times), min(engine_times)
    speedup = naive_t / engine_t

    table = "\n".join([
        f"workload        : grande pair, {len(chip)} tensors, "
        f"{n_params:,} params, {len(LAMS)} lambda points",
        f"naive loop      : {naive_t * 1e3:8.1f} ms",
        f"engine sweep    : {engine_t * 1e3:8.1f} ms",
        f"speedup         : {speedup:8.2f}x",
    ])
    print_result("Merge engine: 11-point lambda sweep vs naive loop", table)

    for naive_sd, engine_sd in zip(naive_result, engine_result):
        for key in naive_sd:
            assert np.allclose(naive_sd[key], engine_sd[key],
                               rtol=1e-10, atol=1e-13), key
    assert speedup >= 3.0, (
        f"expected >= 3x over the naive per-lambda loop, got {speedup:.2f}x")

    obs = Observability()
    engine = GeodesicMergeEngine(chip, instruct, obs=obs)
    engine.sweep(LAMS)
    print_result("Merge engine: metric registry snapshot",
                 json.dumps(obs.registry.snapshot(), indent=2, sort_keys=True))
    benchmark(lambda: engine.sweep(LAMS))


def test_single_merge_amortises_plan(benchmark):
    """After one plan, a single-λ evaluation is several times cheaper than
    a from-scratch merge — the win ModelZoo.merge_engine banks when λ is
    tuned interactively."""
    chip, instruct = _model_pair()
    engine = GeodesicMergeEngine(chip, instruct)
    engine.merge(0.6)  # warm-up

    start = time.perf_counter()
    for _ in range(REPEATS):
        engine.merge(0.6)
    eval_t = (time.perf_counter() - start) / REPEATS

    start = time.perf_counter()
    for _ in range(REPEATS):
        OrderedDict((key, geodesic_merge(chip[key], instruct[key], 0.6))
                    for key in chip)
    naive_t = (time.perf_counter() - start) / REPEATS

    print_result("Merge engine: single-lambda evaluation vs naive merge",
                 f"naive {naive_t * 1e3:.2f} ms  engine-eval {eval_t * 1e3:.2f} ms"
                 f"  ({naive_t / eval_t:.1f}x)")
    assert eval_t < naive_t, "a planned evaluation must beat a full merge"
    benchmark(lambda: engine.merge(0.6))
