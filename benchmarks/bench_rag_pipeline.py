"""RAG substrate benchmark: retrieval quality and stage timings.

Supports Table 1's RAG-context regime: reports recall@k of the golden
paragraph for the evaluation questions, per retrieval stage (dense, BM25,
fused+reranked), mirroring the role of the paper's bge/BM25/reranker stack.
"""

from benchmarks.conftest import print_result
from repro.data.openroad_qa import documentation_corpus, eval_triplets
from repro.rag import BM25Index, DenseRetriever, RagPipeline


def test_retrieval_recall(benchmark):
    corpus = documentation_corpus()
    triplets = eval_triplets()
    golden = [corpus.index(t.context) for t in triplets]
    queries = [t.question for t in triplets]

    dense = DenseRetriever(corpus)
    bm25 = BM25Index(corpus)
    pipeline = RagPipeline(corpus, candidate_k=5, final_k=1)

    def recall(search, k):
        hits = sum(1 for q, g in zip(queries, golden)
                   if g in [i for i, _ in search(q, k)])
        return hits / len(queries)

    rows = [
        f"dense  recall@1={recall(dense.search, 1):.2f} recall@5={recall(dense.search, 5):.2f}",
        f"bm25   recall@1={recall(bm25.search, 1):.2f} recall@5={recall(bm25.search, 5):.2f}",
    ]
    pipe_hits = sum(1 for q, g in zip(queries, golden)
                    if g in pipeline.retrieve(q).doc_ids)
    rows.append(f"fused+reranked recall@1={pipe_hits / len(queries):.2f}")
    print_result("RAG pipeline recall on OpenROAD eval questions", "\n".join(rows))

    # The pipeline must be a strong retriever: clearly above the weaker
    # stage, and high in absolute terms.  (On this corpus exact lexical
    # match is dominant, so BM25 alone can edge out the fused pipeline —
    # a finding worth keeping visible in the printed table.)
    pipe_recall = pipe_hits / len(queries)
    assert pipe_recall >= min(recall(dense.search, 1), recall(bm25.search, 1))
    assert pipe_recall > 0.75

    benchmark(lambda: pipeline.retrieve(queries[0]))
