"""Ablation — layer-wise λ schedules vs the paper's single global λ.

The paper uses one λ for every tensor.  This bench compares the global
λ=0.6 merge against linear depth schedules (chip-heavy-early and
chip-heavy-late) on OpenROAD QA, quantifying how much headroom per-layer
mixing offers over the paper's single-knob design — and thereby how much
simplicity the single knob buys.
"""

from benchmarks.conftest import MAX_ITEMS, print_result
from repro.core.layerwise import LambdaSchedule, merge_state_dicts_layerwise
from repro.core.merge import merge_state_dicts
from repro.data import eval_triplets
from repro.eval import LMAnswerer, run_openroad
from repro.nn.transformer import TransformerLM


def test_layerwise_schedules(zoo, benchmark):
    chip_model = zoo.chip_model("micro")
    chip = chip_model.state_dict()
    instruct = zoo.get("micro", "instruct").state_dict()
    n_layers = chip_model.config.n_layers
    triplets = eval_triplets()[:MAX_ITEMS] if MAX_ITEMS else eval_triplets()

    def evaluate(sd):
        model = TransformerLM(chip_model.config)
        model.load_state_dict(dict(sd))
        model.eval()
        return run_openroad(LMAnswerer(model, zoo.tokenizer), triplets).overall

    scores = {
        "global lam=0.6": evaluate(merge_state_dicts(chip, instruct, lam=0.6)),
        "linear 0.8->0.4": evaluate(merge_state_dicts_layerwise(
            chip, instruct, LambdaSchedule.linear(0.8, 0.4, n_layers, default=0.6))),
        "linear 0.4->0.8": evaluate(merge_state_dicts_layerwise(
            chip, instruct, LambdaSchedule.linear(0.4, 0.8, n_layers, default=0.6))),
    }
    print_result("Ablation: layer-wise lambda schedules (OpenROAD ROUGE-L)",
                 "\n".join(f"{k:<16} rougeL={v:.3f}" for k, v in scores.items()))

    # Constant-schedule consistency: exercised in unit tests; here we assert
    # all variants produce functioning models in a sane score band.
    assert all(v > 0.05 for v in scores.values())

    schedule = LambdaSchedule.linear(0.8, 0.4, n_layers)
    benchmark(lambda: merge_state_dicts_layerwise(chip, instruct, schedule))
