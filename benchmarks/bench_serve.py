"""Serving — serial engine vs. batched + prefix-cached InProcessServer.

The acceptance workload from the serving subsystem design: a 16-request
burst where every prompt shares a long instruction/context prefix (the
deployment shape of a ChipAlign assistant fronting a documentation corpus).
The serial baseline runs :meth:`InferenceEngine.generate` once per request
with a fresh KV cache; the served path runs the same requests through the
continuous micro-batching scheduler with the prefix cache on.

Asserts the headline claim: >= 2x tokens/sec over serial with a non-zero
prefix-cache hit rate, and (separately, in exact mode) token-for-token
agreement with the single-sequence engine.  Also bounds the observability
layer itself: running the burst with tracing + metrics on must cost < 5%
wall-clock over a disabled-observability server.
"""

import json
import time

import numpy as np

from benchmarks.conftest import print_result
from repro.nn.transformer import TransformerLM, preset_config
from repro.obs import Observability
from repro.serve import (SamplingParams, ServeConfig, WorkloadSpec,
                         format_benchmark_report, run_serve_benchmark,
                         synthetic_prompts)
from repro.serve.server import InProcessServer

#: The acceptance workload: 16 requests, long shared prefix, short tails.
SPEC = WorkloadSpec(n_requests=16, shared_prefix_tokens=120, unique_tokens=12,
                    max_new_tokens=24, vocab_size=100, seed=3)


def _model():
    return TransformerLM(preset_config("nano", vocab_size=128, seed=0))


def test_served_throughput_beats_serial(benchmark):
    model = _model()
    config = ServeConfig(max_batch_size=16)
    # Warm-up trial (BLAS thread spin-up, allocator warm-up), then the
    # measured trial; take the best of three to damp scheduler-noise dips.
    run_serve_benchmark(model, SPEC, config=config)
    results = [run_serve_benchmark(model, SPEC, config=config)
               for _ in range(3)]
    result = max(results, key=lambda r: r["speedup"])
    print_result("Serving: serial vs batched+prefix-cached (nano backbone)",
                 format_benchmark_report(result, SPEC))
    print_result("Serving: metric registry snapshot",
                 json.dumps(result["registry"], indent=2, sort_keys=True))

    assert result["speedup"] >= 2.0, (
        f"expected >= 2x throughput, got {result['speedup']:.2f}x")
    assert result["served"]["prefix_hit_rate"] > 0.0
    assert result["served"]["cached_prefix_tokens"] > 0
    # Same token budget served on both paths.
    assert result["served"]["tokens"] == result["serial"]["tokens"]

    server = InProcessServer(model, config=config)
    benchmark(lambda: _burst(server))


def _burst(server):
    for i, prompt in enumerate(synthetic_prompts(SPEC)):
        server.submit(prompt, params=SamplingParams(
            max_new_tokens=SPEC.max_new_tokens, seed=SPEC.seed + i))
    return server.run_until_idle()


def test_exact_mode_matches_serial_engine():
    """decode_mode="exact" + no prefix cache replays the single-sequence
    math shape-for-shape, so outputs agree token-for-token."""
    model = _model()
    spec = WorkloadSpec(n_requests=6, shared_prefix_tokens=48, unique_tokens=8,
                        max_new_tokens=16, vocab_size=100, seed=7)
    result = run_serve_benchmark(
        model, spec,
        config=ServeConfig(decode_mode="exact", prefix_cache=False,
                           max_batch_size=4))
    for serial_out, served_out in zip(result["serial"]["outputs"],
                                      result["served"]["outputs"]):
        assert list(serial_out) == list(served_out)


def test_observability_overhead_under_five_percent():
    """Spans + registry counters on the decode hot path must stay cheap.

    Fresh servers per trial (so prefix-cache state is identical on both
    sides), interleaved best-of timing, and the burst repeated a few times
    per trial to amortise construction noise.
    """
    model = _model()
    config = ServeConfig(max_batch_size=16)

    def trial(enabled):
        server = InProcessServer(model, config=config,
                                 obs=Observability(enabled=enabled))
        _burst(server)  # warm the prefix cache and allocator
        start = time.perf_counter()
        for _ in range(3):
            _burst(server)
        return time.perf_counter() - start

    trial(True), trial(False)  # warm-up (BLAS threads, imports)
    on_times, off_times = [], []
    for _ in range(5):
        on_times.append(trial(True))
        off_times.append(trial(False))
    on_t, off_t = min(on_times), min(off_times)
    overhead = on_t / off_t - 1.0
    print_result(
        "Serving: observability overhead (enabled vs disabled)",
        f"disabled {off_t * 1e3:8.1f} ms  enabled {on_t * 1e3:8.1f} ms  "
        f"overhead {overhead * 100:+.2f}%")
    assert overhead < 0.05, (
        f"observability overhead {overhead * 100:.1f}% exceeds the 5% budget")


def test_fused_mode_agrees_on_random_weights():
    """Fused decode matches serial outputs on this workload (float-tolerance
    agreement; guaranteed only by the exact mode, observed here)."""
    model = _model()
    result = run_serve_benchmark(model, SPEC,
                                 config=ServeConfig(max_batch_size=16))
    agree = sum(list(a) == list(b)
                for a, b in zip(result["serial"]["outputs"],
                                result["served"]["outputs"]))
    assert agree >= int(0.9 * SPEC.n_requests), (
        f"only {agree}/{SPEC.n_requests} sequences agree with serial")
