"""Shared fixtures for the benchmark suite.

Every ``bench_*`` file reproduces one table or figure of the paper
(DESIGN.md §3).  Each bench:

* builds (or loads from cache) the models it needs through the shared zoo;
* runs the experiment through :mod:`repro.pipelines.experiment`, printing a
  table whose rows mirror the paper's layout;
* times a representative operation with ``pytest-benchmark``.

Set ``REPRO_BENCH_FULL=1`` for the full evaluation protocol (all 90/39
items, all λ points); the default trims item counts so the whole suite runs
in a few minutes on a laptop.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Evaluation-set size cap in quick mode (None = everything).
MAX_ITEMS = None if FULL else 45


@pytest.fixture(scope="session")
def zoo():
    from repro.pipelines.model_zoo import default_zoo

    z = default_zoo(verbose=True)
    return z


@pytest.fixture(scope="session")
def tokenizer(zoo):
    return zoo.tokenizer


def print_result(title, table):
    print(f"\n=== {title} ===")
    print(table)
