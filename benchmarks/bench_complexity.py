"""Section III-C — ChipAlign's O(n) time complexity.

Measures merge wall-time over models spanning ~25× in parameter count and
checks that a linear (through-origin) fit explains the timings, as the
paper's complexity analysis claims.
"""

import numpy as np

from benchmarks.conftest import print_result
from repro.core import merge_state_dicts
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.pipelines.experiment import run_complexity


def test_merge_time_is_linear_in_parameters(benchmark):
    result = run_complexity()
    print_result("Section III-C (merge time vs parameters)", result.table)
    print(f"linear-fit R^2 = {result.linear_fit_r2:.4f}")
    assert result.linear_fit_r2 > 0.95, "merge time must scale linearly"
    # Sub-second even at the largest size (the '43 minutes for 70B' scaled down).
    assert max(result.seconds) < 1.0

    config = TransformerConfig(vocab_size=512, dim=96, n_layers=3, n_heads=6,
                               max_seq_len=64, seed=0)
    a = TransformerLM(config).state_dict()
    b = TransformerLM(TransformerConfig(**{**config.to_dict(), "seed": 1})).state_dict()
    benchmark(lambda: merge_state_dicts(a, b, lam=0.6))


def test_merge_memory_is_linear(benchmark):
    """Space check: the merged dict holds exactly one array per input tensor
    (O(n) storage, §III-C)."""
    config = TransformerConfig(vocab_size=256, dim=64, n_layers=2, n_heads=4,
                               max_seq_len=64, seed=0)
    a = TransformerLM(config).state_dict()
    b = TransformerLM(TransformerConfig(**{**config.to_dict(), "seed": 1})).state_dict()
    merged = merge_state_dicts(a, b, lam=0.6)
    assert sum(w.size for w in merged.values()) == sum(w.size for w in a.values())
    benchmark(lambda: merge_state_dicts(a, b, lam=0.6))
