"""Table 1 — ROUGE-L on the OpenROAD QA benchmark.

Reproduces both context regimes (golden and RAG) for both backbone families
(nano ↔ Qwen1.5-14B, micro ↔ LLaMA3-8B) across all merge methods plus the
oracle baselines.  Expected shape (paper): ChipAlign tops every merge
baseline and beats the EDA source model; EDA beats the chat source.
"""

from benchmarks.conftest import MAX_ITEMS, print_result
from repro.pipelines.experiment import run_table1


def test_table1_openroad_qa(zoo, benchmark):
    results = run_table1(families=("nano", "micro"), zoo=zoo, max_items=MAX_ITEMS)
    for result in results:
        print_result(f"Table 1 ({result.family} family)", result.table)

        chipalign = result.scores[f"{result.family}-ChipAlign"]
        eda = result.scores[f"{result.family}-EDA"]
        instruct = result.scores[f"{result.family}-Instruct"]
        # The paper's qualitative orderings on the golden-context regime:
        assert chipalign["golden"]["all"] > instruct["golden"]["all"], \
            "merged model must beat the instruction source on domain QA"
        assert eda["golden"]["all"] > instruct["golden"]["all"], \
            "DAFT must beat the chat source on domain QA"
        # ChipAlign tops the other merge methods (Table 1's main contrast);
        # a small tolerance absorbs quick-protocol noise.
        for other in ("TA", "TIES", "DELLA", "ModelSoup"):
            assert chipalign["golden"]["all"] >= \
                result.scores[f"{result.family}-{other}"]["golden"]["all"] - 0.015, other
        # And it retains (or improves on) the EDA source's domain quality.
        assert chipalign["golden"]["all"] >= eda["golden"]["all"] - 0.02

    # Timed unit: one ChipAlign merge of the micro family (the contribution).
    chip = zoo.chip_model("micro").state_dict()
    instruct_sd = zoo.get("micro", "instruct").state_dict()
    from repro.core import merge_state_dicts

    benchmark(lambda: merge_state_dicts(chip, instruct_sd, lam=0.6))
