"""Serving — zero-copy KV plane: block sharing, hot admission, paged decode.

The zero-copy acceptance workload (DESIGN.md §13).  Three gates, all
unconditional:

* shared-block prefix/session serving must be byte-identical to the dense
  copy path over mixed sampling, prefix hits, and a session resume;
* a full prefix hit must admit with **zero** KV bytes copied — asserted
  from the engine's ``serve.kv.bytes_copied`` counter, not inferred — and
  hot admission must beat cold full-prompt prefill by >= 3x;
* vectorized paged decode must cost at most 1.25x a dense decode step at
  512-token contexts (median of paired rounds).

The report is written to ``BENCH_kvplane.json`` at the repo root when
``REPRO_BENCH_SNAPSHOT=1``.
"""

import os
from pathlib import Path

from benchmarks.conftest import FULL, print_result
from repro.serve.kvplane_bench import (format_kvplane_report,
                                       run_kvplane_benchmark,
                                       write_kvplane_snapshot)

#: Where the perf-trajectory snapshot lands (repo root, committed).
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_kvplane.json"


def test_kvplane_parity_zero_copy_and_step_cost(benchmark):
    result = run_kvplane_benchmark(
        n_groundings=4 if FULL else 3,
        tails_per_grounding=3 if FULL else 2,
        repeats=7 if FULL else 5,
        steps=40 if FULL else 30,
        epochs=25, seed=0)
    print_result("Serve: zero-copy KV plane vs the copy path",
                 format_kvplane_report(result))
    if os.environ.get("REPRO_BENCH_SNAPSHOT", "0") == "1":
        write_kvplane_snapshot(result, SNAPSHOT)

    assert result["parity_ok"], \
        "shared-block serving diverged from the dense copy path"
    adm = result["admission"]
    assert result["zero_copy_ok"], (
        f"full prefix hits copied {adm['hot_bytes_copied']} KV bytes "
        f"(counter says {adm['counter_bytes_copied']})")
    assert adm["counter_blocks_shared"] > 0, \
        "no blocks were shared - the zero-copy path never engaged"
    assert result["admission_speedup"] >= result["admission_speedup_target"], (
        f"hot admission only {result['admission_speedup']:.2f}x faster than "
        f"cold (target >= {result['admission_speedup_target']:.1f}x): "
        f"cold {adm['cold_admission_s'] * 1e3:.2f} ms, "
        f"hot {adm['hot_admission_s'] * 1e3:.2f} ms")
    assert result["step_ratio"] <= result["step_ratio_ceiling"], (
        f"paged decode costs {result['step_ratio']:.3f}x dense per step at "
        f"{result['step']['context_tokens']}-token contexts (ceiling "
        f"{result['step_ratio_ceiling']:.2f}x)")

    benchmark(lambda: run_kvplane_benchmark(
        n_groundings=1, tails_per_grounding=1, repeats=1, steps=5,
        epochs=8, seed=0))
