"""Serving — the network front door over real sockets, gated on SLOs.

The acceptance workload from the serve.net design (DESIGN.md §9): the
nano backbone behind a real 127.0.0.1 TCP listener, driven by the
open-loop load generator.  Five phases — wire/in-process byte parity,
Poisson streaming SLOs, 9:1 two-tenant fairness, overload shedding, and
graceful drain — each asserted here and summarised in ``BENCH_net.json``
at the repo root when ``REPRO_BENCH_SNAPSHOT=1``.

SLO bounds live next to the driver in :mod:`repro.serve.net.bench`; they
are deliberately generous (catching order-of-magnitude regressions on
shared CI boxes, not benchmarking the machine).  The structural gates —
byte identity, explicit sheds with positive retry hints, zero protocol
errors, conservation across drain — are exact and unconditional.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import print_result
from repro.serve.loadgen import WorkloadSpec, arrival_schedule
from repro.serve.net.bench import (FAIRNESS_RATIO_MAX, MIN_TOKENS_PER_SEC,
                                   TTFT_P50_SLO_S, TTFT_P99_SLO_S,
                                   format_net_report, run_net_benchmark,
                                   write_net_snapshot)

#: Where the committed socket-SLO snapshot lands (repo root).
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_net.json"


def test_net_serving_slos(benchmark):
    report = run_net_benchmark(backbone="nano", n_requests=16, seed=3)
    print_result("Serving: socket front door (nano backbone)",
                 format_net_report(report))
    if os.environ.get("REPRO_BENCH_SNAPSHOT", "0") == "1":
        write_net_snapshot(report, SNAPSHOT)

    # Structural gates: exact, machine-independent.
    assert report["parity"]["byte_identical"], (
        "socket completions diverged from InProcessServer.complete")
    assert report["parity"]["stream_mismatches"] == 0
    assert report["streaming"]["n_errors"] == 0
    assert report["streaming"]["protocol_errors"] == 0
    assert report["streaming"]["conservation_ok"]
    assert report["overload"]["n_shed"] > 0, (
        "overload burst was absorbed silently — admission never bit")
    assert report["overload"]["retry_after_all_positive"]
    assert report["overload"]["n_errors"] == 0
    assert report["overload"]["conservation_ok"]
    assert report["drain"]["n_finished"] == report["drain"]["n_requests"], (
        "drain dropped admitted in-flight work")
    assert report["drain"]["refused_code"] == "draining"
    assert report["drain"]["conservation_ok"]

    # SLO gates (generous; see module docstring).
    assert report["streaming"]["ttft_p50_s"] <= TTFT_P50_SLO_S
    assert report["streaming"]["ttft_p99_s"] <= TTFT_P99_SLO_S
    assert report["streaming"]["tokens_per_second"] >= MIN_TOKENS_PER_SEC
    # Fairness: ratio bound with an absolute grace floor — at single-digit
    # millisecond p99s the idle-server solo denominator is pure jitter.
    assert report["fairness"]["within_slo"], (
        f"minority tenant p99 TTFT "
        f"{report['fairness']['minority_contended_ttft_p99_s'] * 1e3:.1f} ms "
        f"under a 9:1 aggressor — {report['fairness']['ratio']:.2f}x its "
        f"solo run (max {FAIRNESS_RATIO_MAX}x or "
        f"{report['fairness']['abs_floor_s'] * 1e3:.0f} ms absolute)")
    assert report["slo_ok"]

    benchmark(lambda: arrival_schedule(
        WorkloadSpec(n_requests=256, arrival="poisson")))


def test_arrival_schedules_replay_from_snapshot():
    """BENCH_net.json's arrival arrays replay the exact same schedule the
    run used (satellite: exportable/replayable arrival processes)."""
    spec = WorkloadSpec(n_requests=16, shared_prefix_tokens=48,
                        unique_tokens=12, max_new_tokens=16, vocab_size=100,
                        seed=3, arrival="poisson", arrival_rate_rps=64.0)
    fresh = arrival_schedule(spec)
    # Round-trip through JSON, as the snapshot stores them.
    restored = tuple(json.loads(json.dumps(list(fresh))))
    assert restored == fresh
    if SNAPSHOT.exists():
        saved = json.loads(SNAPSHOT.read_text())
        assert tuple(saved["streaming"]["arrivals"]) == fresh, (
            "committed BENCH_net.json streaming arrivals no longer match "
            "the seeded schedule — spec or RNG stream drifted")
