"""Evaluation — WorkerPool fan-out vs. the serial item loop.

The acceptance workload from the parallel-layer design: the OpenROAD QA
benchmark at the ``grande`` backbone evaluated with 4 workers and serially.
Both arms run the same answerer over the same triplets, so responses and
ROUGE-L scores must be bit-identical; the wall-clock ratio is the headline
speedup.  Timing rounds are interleaved (parallel, serial, repeated) with
the min per side, as in ``bench_train.py``.

The >= 2x target assumes the machine actually has the cores to run 4
workers; on starved CI boxes the report's ``target_applies`` flag is false
and the gate degrades to an overhead sanity bound, while parity and the
no-leaked-shared-memory invariant are asserted unconditionally.  The
report is written to ``BENCH_parallel.json`` at the repo root when
``REPRO_BENCH_SNAPSHOT=1``.
"""

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import FULL, print_result
from repro.parallel import parallel_available
from repro.parallel.bench import (SPEEDUP_TARGET, format_parallel_report,
                                  run_parallel_benchmark, write_snapshot)

#: Where the perf-trajectory snapshot lands (repo root, committed).
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: When the core count can't sustain the pool, the parallel arm still must
#: not collapse under dispatch/IPC overhead: the pool time-slicing a single
#: core stays within ~3x of the serial loop on this workload.
MIN_STARVED_RATIO = 0.33


def test_parallel_eval_speedup_and_parity(benchmark):
    if not parallel_available():
        pytest.skip("platform cannot fork worker processes")
    result = run_parallel_benchmark(
        backbone="grande", workers=4, n_items=None if FULL else 30,
        max_new_tokens=24, repeats=3 if FULL else 2, seed=0)
    print_result("Eval: 4-worker pool vs serial loop (grande backbone)",
                 format_parallel_report(result))
    print_result("Eval: parallel-run registry snapshot",
                 json.dumps(result["registry"], indent=2, sort_keys=True))
    if os.environ.get("REPRO_BENCH_SNAPSHOT", "0") == "1":
        write_snapshot(result, SNAPSHOT)

    assert result["parity_ok"], \
        "parallel responses/scores diverged from the serial loop"
    assert result["leaked_segments"] == [], (
        f"leaked shared-memory segments: {result['leaked_segments']}")
    registry = result["registry"]
    assert any(name.startswith("parallel.") for name in registry), (
        f"no pool counters in registry: {sorted(registry)}")
    if result["target_applies"]:
        assert result["speedup"] >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x eval speedup at "
            f"{result['workers']} workers on {result['cpu_count']} cores, "
            f"got {result['speedup']:.2f}x")
    else:
        assert result["speedup"] >= MIN_STARVED_RATIO, (
            f"pool overhead out of bounds on a starved machine "
            f"({result['cpu_count']} core(s)): {result['speedup']:.2f}x")

    benchmark(lambda: run_parallel_benchmark(
        backbone="grande", workers=2, n_items=6, max_new_tokens=12,
        repeats=1, seed=0))
