"""Ablation — geodesic (arc) versus linear (chord) interpolation.

DESIGN.md calls out the paper's central design choice: interpolating along
the sphere's geodesic with geometric-mean norm restoration instead of the
straight chord through weight space.  This bench quantifies the geometric
defect the paper's method removes (the chord's Frobenius-norm sag) and
compares downstream quality of geodesic vs purely linear weight blending at
the recommended λ=0.6.
"""

import numpy as np

from benchmarks.conftest import MAX_ITEMS, print_result
from repro.core.analysis import norm_deviation_along_path
from repro.core.baselines import model_soup
from repro.core.merge import merge_state_dicts
from repro.data import eval_triplets
from repro.eval import LMAnswerer, run_openroad
from repro.nn.transformer import TransformerLM


def test_chord_norm_sag_vs_geodesic(zoo, benchmark):
    """The chord's norm deviates from the geometric-mean target; the geodesic
    path's deviation is identically zero."""
    chip = zoo.chip_model("micro").state_dict()
    instruct = zoo.get("micro", "instruct").state_dict()
    lams = np.linspace(0.1, 0.9, 9)
    rows = []
    worst_linear = 0.0
    for key in list(chip)[:6]:
        lin = norm_deviation_along_path(chip[key], instruct[key], lams, "linear")
        geo = norm_deviation_along_path(chip[key], instruct[key], lams, "geodesic")
        rows.append(f"{key:<34} linear-sag(max)={lin.max():.5f} geodesic={geo.max():.2e}")
        worst_linear = max(worst_linear, float(lin.max()))
        assert geo.max() < 1e-8
    print_result("Ablation: norm deviation along interpolation path",
                 "\n".join(rows))
    assert worst_linear > 0.0

    key = list(chip)[2]
    benchmark(lambda: norm_deviation_along_path(chip[key], instruct[key],
                                                lams, "linear"))


def test_geodesic_vs_linear_blend_downstream(zoo, benchmark):
    """Downstream ROUGE-L of the geodesic merge vs a λ-weighted linear blend
    at the operating λ (Table 1's ChipAlign-vs-ModelSoup contrast controlled
    to the same mixing weight).

    Finding (recorded in EXPERIMENTS.md): when the two source models have
    nearly equal Frobenius norms — as same-ancestor LoRA fine-tunes do — the
    geodesic and the renormalised chord are within noise of each other; the
    geodesic's decisive advantage is the *norm restoration* step (see
    bench_ablation_rescale: dropping it collapses the model), which matters
    more the further apart the source norms drift.
    """
    from repro.pipelines.experiment import OPENROAD_LAMBDA

    chip_model = zoo.chip_model("micro")
    chip = chip_model.state_dict()
    instruct = zoo.get("micro", "instruct").state_dict()
    triplets = eval_triplets()[:MAX_ITEMS] if MAX_ITEMS else eval_triplets()

    def evaluate(sd):
        model = TransformerLM(chip_model.config)
        model.load_state_dict(dict(sd))
        model.eval()
        return run_openroad(LMAnswerer(model, zoo.tokenizer), triplets).overall

    lam = OPENROAD_LAMBDA
    geodesic = evaluate(merge_state_dicts(chip, instruct, lam=lam))
    linear = evaluate(model_soup([chip, instruct], weights=[lam, 1 - lam]))
    print_result(f"Ablation: geodesic vs linear blend at lambda={lam}",
                 f"geodesic={geodesic:.3f}  linear={linear:.3f}")
    # Equal-norm sources: the two paths must agree to within noise.
    assert abs(geodesic - linear) <= 0.03
    assert geodesic > 0.15  # and both produce competent models

    benchmark(lambda: merge_state_dicts(chip, instruct, lam=lam))
