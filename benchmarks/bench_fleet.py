"""Serving — replica fleet over shared-memory weights vs a single engine.

The fleet's acceptance workload: a multi-prefix-group burst answered by a
consistent-hash-routed :class:`~repro.serve.fleet.FleetServer` and by a
single engine.  Phase 1 (exact decode, prefix cache off) must be
**byte-identical** across the two arms — routing is not allowed to change
output.  Phase 2 times aggregate tokens/sec in the production
configuration (fused decode, prefix cache on) for a fleet of one replica
vs ``replicas`` replicas, interleaved rounds, min per side.

The >= 2x aggregate-throughput target assumes the machine has the cores
to run the replicas; on starved CI boxes ``target_applies`` is false and
the gate degrades to a router-overhead sanity bound, while parity, zero
respawns, and the no-leaked-shared-memory invariant are asserted
unconditionally.  The report is written to ``BENCH_fleet.json`` at the
repo root when ``REPRO_BENCH_SNAPSHOT=1``.
"""

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import FULL, print_result
from repro.parallel import parallel_available
from repro.serve.fleet_bench import (format_fleet_report,
                                     run_fleet_benchmark,
                                     write_fleet_snapshot)

#: Where the perf-trajectory snapshot lands (repo root, committed).
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: When the core count can't sustain the replicas, the routed arm still
#: must not collapse under dispatch/IPC overhead: replicas time-slicing a
#: single core stay within ~3x of the single-replica arm.
MIN_STARVED_RATIO = 0.33


def test_fleet_throughput_and_byte_parity(benchmark):
    if not parallel_available():
        pytest.skip("platform cannot fork replica processes")
    result = run_fleet_benchmark(
        backbone="nano", replicas=4,
        requests_per_group=4 if FULL else 2,
        max_new_tokens=16, repeats=3 if FULL else 2, seed=0)
    print_result("Serve: 4-replica fleet vs single engine (nano backbone)",
                 format_fleet_report(result))
    print_result("Serve: fleet merged registry",
                 json.dumps(result["merged_registry"], indent=2,
                            sort_keys=True))
    if os.environ.get("REPRO_BENCH_SNAPSHOT", "0") == "1":
        write_fleet_snapshot(result, SNAPSHOT)

    assert result["parity_ok"], \
        "routed fleet output diverged from the single engine in exact mode"
    assert result["respawns"] == 0, \
        f"replicas died during a healthy benchmark: {result['respawns']}"
    assert result["router"]["conservation_ok"] == 1, result["router"]
    assert result["leaked_segments"] == [], (
        f"leaked shared-memory segments: {result['leaked_segments']}")
    if result["target_applies"]:
        assert result["speedup"] >= result["speedup_target"], (
            f"expected >= {result['speedup_target']}x aggregate tokens/sec "
            f"at {result['replicas']} replicas on {result['cpu_count']} "
            f"cores, got {result['speedup']:.2f}x")
    else:
        assert result["speedup"] >= MIN_STARVED_RATIO, (
            f"router overhead out of bounds on a starved machine "
            f"({result['cpu_count']} core(s)): {result['speedup']:.2f}x")

    benchmark(lambda: run_fleet_benchmark(
        backbone="nano", replicas=2, groups=2, requests_per_group=2,
        max_new_tokens=8, repeats=1, seed=0))
