"""Ablation — norm-restoration variants after spherical interpolation.

The paper rescales the interpolated unit-norm weights by the *geometric*
mean of the source norms.  This bench compares that choice against the
arithmetic mean and against no restoration at all (leaving unit-norm
weights), measuring downstream OpenROAD QA ROUGE-L at λ=0.6.
"""

from collections import OrderedDict

import numpy as np

from benchmarks.conftest import MAX_ITEMS, print_result
from repro.core.geodesic import frobenius_norm, project_to_sphere, slerp
from repro.data import eval_triplets
from repro.eval import LMAnswerer, run_openroad
from repro.nn.transformer import TransformerLM


def merge_with_rescale(chip, instruct, lam, mode):
    """Spherical interpolation with a configurable norm-restoration rule."""
    merged = OrderedDict()
    for key in chip:
        norm_c = frobenius_norm(chip[key])
        norm_i = frobenius_norm(instruct[key])
        if norm_c == 0 or norm_i == 0:
            merged[key] = lam * chip[key] + (1 - lam) * instruct[key]
            continue
        unit = slerp(chip[key] / norm_c, instruct[key] / norm_i, lam)
        if mode == "geometric":
            scale = norm_c ** lam * norm_i ** (1 - lam)
        elif mode == "arithmetic":
            scale = lam * norm_c + (1 - lam) * norm_i
        elif mode == "none":
            scale = 1.0
        else:
            raise ValueError(mode)
        merged[key] = scale * unit
    return merged


def test_rescale_variants(zoo, benchmark):
    chip_model = zoo.chip_model("micro")
    chip = chip_model.state_dict()
    instruct = zoo.get("micro", "instruct").state_dict()
    triplets = eval_triplets()[:MAX_ITEMS] if MAX_ITEMS else eval_triplets()

    scores = {}
    for mode in ("geometric", "arithmetic", "none"):
        model = TransformerLM(chip_model.config)
        model.load_state_dict(dict(merge_with_rescale(chip, instruct, 0.6, mode)))
        model.eval()
        scores[mode] = run_openroad(LMAnswerer(model, zoo.tokenizer), triplets).overall
    print_result("Ablation: norm restoration",
                 "\n".join(f"{m:<11} rougeL={v:.3f}" for m, v in scores.items()))

    # Dropping restoration entirely destroys the model (norms collapse to 1).
    assert scores["geometric"] > scores["none"] + 0.05
    # Geometric vs arithmetic mean differ little when norms are similar; the
    # paper's choice must at least not hurt.
    assert scores["geometric"] >= scores["arithmetic"] - 0.02

    benchmark(lambda: merge_with_rescale(chip, instruct, 0.6, "geometric"))
