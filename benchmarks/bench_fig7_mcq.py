"""Figure 7 — multi-choice chip QA accuracy (pure domain knowledge).

EDA scripts / bugs / circuits accuracy for the grande trio.  Expected shape
(paper): ChipAlign performs on par with ChipNeMo (knowledge is preserved by
the merge) and both beat Chat.
"""

from benchmarks.conftest import print_result
from repro.data import mcq_items
from repro.eval import evaluate_mcq
from repro.pipelines.experiment import run_fig7


def test_fig7_mcq(zoo, benchmark):
    result = run_fig7(zoo=zoo)
    print_result("Figure 7 (multi-choice chip QA accuracy, %)", result.table)

    chat = result.scores["Chat"]["overall"]
    nemo = result.scores["ChipNeMo"]["overall"]
    align = result.scores["ChipAlign"]["overall"]
    assert nemo > chat, "domain adaptation must add measurable chip knowledge"
    assert align >= 0.8 * nemo, "the merge must preserve chip knowledge"
    assert align > chat, "the merged model must know more chip facts than chat"

    items = mcq_items()[:10]
    model = zoo.get("grande", "chipnemo")
    benchmark(lambda: evaluate_mcq(model, zoo.tokenizer, items))
