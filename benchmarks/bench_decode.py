"""Serving — cheap decode (int8 / paged KV / speculative) vs its oracles.

The cheap-decode acceptance workload: every cost-saving path must be
byte-identical to its exactness oracle (paged vs dense KV, int8 vs the
dequantized-weight exact engine, speculative vs target-only decoding) —
asserted unconditionally, like every parity gate in this suite.  The
speculative >= 1.2x tokens/sec target applies only when the measured
draft-acceptance rate clears the 0.5 floor (``target_applies``); below it
the gate degrades to an overhead bound — a draft that disagrees with its
target must not *cost* more than ``MIN_STARVED_RATIO`` of baseline
throughput.  KV accounting must show paged reserving no more than dense
under the mixed-length burst, with zero leaked blocks and an intact
free-list conservation invariant after drain.  The report is written to
``BENCH_decode.json`` at the repo root when ``REPRO_BENCH_SNAPSHOT=1``.
"""

import os
from pathlib import Path

from benchmarks.conftest import FULL, print_result
from repro.serve.decode_bench import (format_decode_report,
                                      run_decode_benchmark,
                                      write_decode_snapshot)

#: Where the perf-trajectory snapshot lands (repo root, committed).
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_decode.json"

#: When the draft disagrees too often for speculation to pay, the
#: speculative arm still must not collapse under draft/verify overhead.
MIN_STARVED_RATIO = 0.5


def test_decode_parity_memory_and_speculative_speedup(benchmark):
    result = run_decode_benchmark(
        n_requests=12 if FULL else 8,
        max_new_tokens=32,
        repeats=5 if FULL else 3,
        epochs=30, seed=0)
    print_result("Serve: cheap decode vs oracles (grande target, nano draft)",
                 format_decode_report(result))
    if os.environ.get("REPRO_BENCH_SNAPSHOT", "0") == "1":
        write_decode_snapshot(result, SNAPSHOT)

    assert result["parity"]["paged_vs_dense"], \
        "paged KV output diverged from the dense layout"
    assert result["parity"]["int8_vs_dequant_oracle"], \
        "int8 fused decode diverged from its dequantized exact oracle"
    assert result["parity"]["speculative_vs_target_only"], \
        "speculative decoding diverged from target-only decoding"
    assert result["weights"]["ratio"] <= 0.5, (
        f"int8 state dict should be well under half of fp32, got "
        f"{result['weights']['ratio']:.2f}x")
    kv = result["kv"]
    assert kv["paged"]["leaked_blocks"] == 0, kv["paged"]
    assert kv["paged"]["conservation_ok"], kv["paged"]
    assert kv["reserved_ratio"] <= 1.0, (
        f"paged KV reserved more than dense under mixed lengths: "
        f"{kv['reserved_ratio']:.2f}x")
    assert (kv["paged"]["bytes_per_session"]
            < kv["dense"]["bytes_per_session"]), (
        f"paged KV should hold fewer bytes per live session than dense "
        f"under mixed lengths: {kv['paged']} vs {kv['dense']}")
    if result["target_applies"]:
        assert result["speedup"] >= result["speedup_target"], (
            f"expected >= {result['speedup_target']}x speculative tokens/sec "
            f"at acceptance {result['speculative']['acceptance_rate']:.2f}, "
            f"got {result['speedup']:.2f}x")
    else:
        assert result["speedup"] >= MIN_STARVED_RATIO, (
            f"speculation overhead out of bounds at acceptance "
            f"{result['speculative']['acceptance_rate']:.2f}: "
            f"{result['speedup']:.2f}x")

    benchmark(lambda: run_decode_benchmark(
        n_requests=4, max_new_tokens=8, repeats=1, epochs=8, seed=0))
