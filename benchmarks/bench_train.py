"""Training — fused single-node kernels vs. the composed autograd graph.

The acceptance workload from the fused-kernel design: >= 10 optimiser steps
at the ``grande`` backbone (the largest preset, playing LLaMA2-70B's role)
on fixed-length synthetic batches.  Both sides start from identical weights
and consume identical batches; they differ only in ``use_fused``, so the
loss curves must agree to float32 tolerance while the fused side finishes
each step roughly twice as fast (fused attention with a recomputation-free
backward, whole-head fused loss, folded RMSNorm weights, workspace reuse).

Timing rounds are interleaved (fused fit, composed fit, repeated) with the
min taken per side, which discards co-tenant load spikes without favouring
either arm.  The report — steps/sec, tokens/sec, speedup, loss divergence,
and the fused run's kernel-counter registry — is written to
``BENCH_train.json`` at the repo root as the first perf-trajectory snapshot.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import FULL, print_result
from repro.nn.train_bench import (format_train_report, run_train_benchmark,
                                  write_snapshot)

#: Where the perf-trajectory snapshot lands (repo root, committed).
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_train.json"

#: Speedup floor asserted against the composed path.  The headline target is
#: 2x; CI machines are noisy and share cores, so the hard gate leaves margin
#: while the committed snapshot records the measured number.
MIN_SPEEDUP = 1.5


def test_fused_training_speedup_and_parity(benchmark):
    result = run_train_benchmark(
        backbone="grande", steps=10, batch_size=8, vocab=256,
        repeats=4 if FULL else 2, seed=0)
    print_result("Training: fused kernels vs composed graph (grande backbone)",
                 format_train_report(result))
    print_result("Training: fused-kernel registry snapshot",
                 json.dumps(result["registry"], indent=2, sort_keys=True))
    if os.environ.get("REPRO_BENCH_SNAPSHOT", "0") == "1":
        write_snapshot(result, SNAPSHOT)

    assert result["parity_ok"], (
        f"fused/composed loss curves diverged: max |diff| = "
        f"{result['loss_max_abs_diff']:.2e}")
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x per-step speedup, "
        f"got {result['speedup']:.2f}x")
    # The fused run must actually have gone through the kernels.
    registry = result["registry"]
    assert any(name.startswith("kernels.") for name in registry), (
        f"no kernel counters in registry: {sorted(registry)}")

    benchmark(lambda: run_train_benchmark(
        backbone="grande", steps=2, batch_size=4, vocab=256, repeats=1,
        seed=0))
