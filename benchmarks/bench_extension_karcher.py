"""Extension — N-model merging via the spherical Karcher mean.

The paper's conclusion points at applications beyond two models; this bench
exercises the natural generalisation shipped in :mod:`repro.core.karcher`:

* 2-model sanity: the weighted Karcher mean must reproduce ChipAlign's
  SLERP merge exactly (N=2 reduction);
* 3-model merge: fusing the chip model, the instruct model, *and* their
  common base produces a functioning model whose quality interpolates the
  pair-merge's (regularisation toward base trades domain skill for
  stability).
"""

import numpy as np

from benchmarks.conftest import MAX_ITEMS, print_result
from repro.core.karcher import karcher_merge_state_dicts
from repro.core.merge import merge_state_dicts
from repro.data import eval_triplets
from repro.eval import LMAnswerer, run_openroad
from repro.nn.transformer import TransformerLM


def test_karcher_extension(zoo, benchmark):
    from repro.pipelines.experiment import OPENROAD_LAMBDA

    chip_model = zoo.chip_model("micro")
    chip = chip_model.state_dict()
    instruct = zoo.get("micro", "instruct").state_dict()
    base = zoo.get("micro", "base").state_dict()
    triplets = eval_triplets()[:MAX_ITEMS] if MAX_ITEMS else eval_triplets()

    # N=2 reduction: Karcher(w=[lam, 1-lam]) == ChipAlign slerp at lam.
    lam = OPENROAD_LAMBDA
    karcher2 = karcher_merge_state_dicts([chip, instruct], weights=[lam, 1 - lam])
    slerp2 = merge_state_dicts(chip, instruct, lam=lam)
    worst = max(float(np.abs(karcher2[k] - slerp2[k]).max()) for k in chip)
    assert worst < 1e-4, f"Karcher N=2 must reduce to SLERP (max err {worst})"

    def evaluate(sd):
        model = TransformerLM(chip_model.config)
        model.load_state_dict(dict(sd))
        model.eval()
        return run_openroad(LMAnswerer(model, zoo.tokenizer), triplets).overall

    pair = evaluate(slerp2)
    triple = evaluate(karcher_merge_state_dicts(
        [chip, instruct, base], weights=[0.6, 0.2, 0.2]))
    print_result("Extension: Karcher N-model merging",
                 f"N=2 reduction max err = {worst:.2e}\n"
                 f"pair merge (lam={lam})        rougeL={pair:.3f}\n"
                 f"triple merge (chip/instr/base) rougeL={triple:.3f}")
    assert triple > 0.05  # a functioning, non-degenerate model

    benchmark(lambda: karcher_merge_state_dicts([chip, instruct, base]))
