"""Substrate benchmark: KV-cached inference engine vs autograd decoding.

Not a paper artifact, but the engine underpins every other bench; this
keeps its speed-up and its exactness visible.
"""

import numpy as np

from benchmarks.conftest import print_result
from repro.nn.generation import generate
from repro.nn.infer import InferenceEngine


PROMPT = ("context : the orion chip has four cpu clusters question : how many "
          "cpu clusters does the orion chip have assistant :")


def test_engine_speedup_and_parity(zoo, benchmark):
    import time

    model = zoo.get("grande", "chipnemo")
    tok = zoo.tokenizer
    ids = tok.encode(PROMPT, add_bos=True)
    engine = InferenceEngine(model)

    start = time.perf_counter()
    slow = generate(model, ids, max_new_tokens=24, eos_id=tok.eos_id)
    slow_s = time.perf_counter() - start
    start = time.perf_counter()
    fast = engine.generate(ids, max_new_tokens=24, eos_id=tok.eos_id)
    fast_s = time.perf_counter() - start

    print_result("Inference engine",
                 f"autograd={slow_s * 1000:.0f} ms  kv-cache={fast_s * 1000:.1f} ms  "
                 f"speedup={slow_s / max(fast_s, 1e-9):.1f}x")
    assert slow == fast, "KV-cached decoding must be exact"
    assert fast_s < slow_s

    benchmark(lambda: engine.generate(ids, max_new_tokens=24, eos_id=tok.eos_id))
