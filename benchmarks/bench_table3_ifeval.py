"""Table 3 — instruction-following accuracy on IFEval.

Strict/loose × prompt/instruction level for both families' triples.
Expected shape (paper): DAFT collapses the chip models' compliance; the
ChipAlign merge restores it to (near) the instruction model's level.
"""

from benchmarks.conftest import FULL, print_result
from repro.data import ifeval_prompts
from repro.eval.ifeval import evaluate_model
from repro.pipelines.experiment import run_table3


def test_table3_ifeval(zoo, benchmark):
    result = run_table3(zoo=zoo, n_prompts=120 if FULL else 60)
    print_result("Table 3 (IFEval accuracy, %)", result.table)

    micro_instruct = result.scores["micro-Instruct (LLaMA3-8B-Instruct)"]
    micro_eda = result.scores["micro-EDA (LLaMA3-8B-EDA)"]
    micro_align = result.scores["micro-ChipAlign"]
    # The paper's forgetting-and-recovery arc:
    assert micro_eda["prompt_strict"] < micro_instruct["prompt_strict"] - 0.1, \
        "DAFT must visibly erode instruction alignment"
    assert micro_align["prompt_strict"] > micro_eda["prompt_strict"] + 0.1, \
        "the merge must visibly recover instruction alignment"

    grande_nemo = result.scores["grande-ChipNeMo (LLaMA2-70B-ChipNeMo)"]
    grande_align = result.scores["grande-ChipAlign"]
    assert grande_align["prompt_strict"] >= grande_nemo["prompt_strict"], \
        "the merged 70B-analog must not be less aligned than ChipNeMo"

    # Timed unit: IFEval over 15 prompts for the merged micro model.
    prompts = ifeval_prompts(n_prompts=15)
    from repro.pipelines.experiment import OPENROAD_LAMBDA
    model = zoo.merged("micro", "chipalign", lam=OPENROAD_LAMBDA)
    benchmark(lambda: evaluate_model(model, zoo.tokenizer, prompts))
